/**
 * @file
 * Timing wheel that schedules instruction-completion events.
 *
 * The cores schedule "this micro-op finishes at cycle T" events; the
 * wheel pops everything due at the current cycle in O(1) amortised and
 * can report the next non-empty slot so idle periods can be skipped.
 *
 * Implemented as a real timing wheel: a power-of-two ring of slot
 * vectors indexed by cycle, plus an overflow list for events beyond
 * the horizon (unreachable with the paper's latencies — the deepest
 * completion is a ~1000-cycle memory access against a 4096-cycle
 * default horizon). Slot vectors retain their capacity, so the
 * steady-state schedule/pop traffic performs no heap allocation;
 * the previous std::map implementation allocated a tree node per
 * distinct completion cycle.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/util/logging.hh"

namespace kilo
{

/**
 * Calendar queue keyed by absolute cycle.
 *
 * Events must be scheduled at cycles >= the argument of the last
 * popDue() call; pops deliver events in ascending cycle order and in
 * insertion order within a cycle, exactly like the ordered-map
 * implementation it replaces (the overflow path orders by cycle
 * only).
 */
template <typename T>
class EventWheel
{
  public:
    /** @param horizon_hint minimum schedule-ahead distance covered by
     *  the ring; farther events go to the (rare) overflow list. */
    explicit EventWheel(uint64_t horizon_hint = 4096)
    {
        uint64_t n = 1;
        while (n < horizon_hint)
            n <<= 1;
        ring.resize(size_t(n));
    }

    /** Schedule @p payload to pop at absolute @p cycle. */
    void
    schedule(uint64_t cycle, const T &payload)
    {
        KILO_ASSERT(cycle >= popFrontier,
                    "EventWheel schedule in the past");
        if (cycle - popFrontier < horizon())
            ring[slotOf(cycle)].push_back(Event{payload, cycle});
        else
            overflow.push_back(Event{payload, cycle});
        ++count;
        // NoCycle doubles as "unknown": only seed the cache when the
        // wheel was empty (nothing earlier can be pending); a min
        // update against the unknown sentinel would over-report
        // nextCycle() past events scheduled before the invalidation.
        if (count == 1)
            cachedNext = cycle;
        else if (cachedNext != NoCycle && cycle < cachedNext)
            cachedNext = cycle;
    }

    /** Number of pending events. */
    size_t size() const { return count; }

    /** True when nothing is scheduled. */
    bool empty() const { return count == 0; }

    /**
     * Earliest cycle with a pending event.
     * @pre !empty()
     */
    uint64_t
    nextCycle() const
    {
        KILO_ASSERT(!empty(), "nextCycle on empty EventWheel");
        if (cachedNext != NoCycle)
            return cachedNext;
        uint64_t best = NoCycle;
        for (const auto &ev : overflow)
            best = std::min(best, ev.cycle);
        // Every ring slot holds exactly one cycle (the horizon bounds
        // schedule-ahead), so the first non-empty slot in frontier
        // order is the earliest in-ring event.
        for (uint64_t c = popFrontier;
             c < popFrontier + horizon() && c < best; ++c) {
            if (!ring[slotOf(c)].empty()) {
                best = c;
                break;
            }
        }
        KILO_ASSERT(best != NoCycle, "EventWheel lost an event");
        cachedNext = best;
        return best;
    }

    /**
     * Pop every event due at or before @p cycle into @p out.
     * Returns the number of events popped.
     */
    size_t
    popDue(uint64_t cycle, std::vector<T> &out)
    {
        // Everything below the frontier was already popped; without
        // this guard the horizon clamp underflows and would deliver
        // future events early.
        if (cycle < popFrontier)
            return 0;
        size_t popped = 0;
        if (count) {
            uint64_t stop = cycle + 1;
            // One full revolution covers every in-ring event.
            if (stop - popFrontier > horizon())
                stop = popFrontier + horizon();
            for (uint64_t c = popFrontier; c < stop && count; ++c) {
                auto &slot = ring[slotOf(c)];
                if (slot.empty())
                    continue;
                for (const auto &ev : slot) {
                    KILO_ASSERT(ev.cycle == c,
                                "EventWheel slot aliasing");
                    out.push_back(ev.payload);
                    ++popped;
                }
                count -= slot.size();
                slot.clear(); // keeps capacity for reuse
            }
            popped += popDueOverflow(cycle, out);
        }
        if (cycle >= popFrontier)
            popFrontier = cycle + 1;
        if (cachedNext != NoCycle && cachedNext < popFrontier)
            cachedNext = NoCycle;
        migrateOverflow();
        return popped;
    }

    /** Drop all pending events (full-pipeline squash). */
    void
    clear()
    {
        for (auto &slot : ring)
            slot.clear();
        overflow.clear();
        count = 0;
        cachedNext = NoCycle;
    }

    /**
     * Serialize / restore the pending-event set. Events are saved as
     * one flat (payload, cycle) list in pop order — ring slots in
     * frontier order, then overflow — and re-scheduled on load, which
     * reconstructs identical slot vectors. The horizon is
     * configuration and is not part of the image. @{
     */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        // Element-wise, payload then cycle: Event has padding after
        // a payload smaller than 8 bytes, and indeterminate padding
        // must never reach a checkpoint payload or a KILOAUD state
        // digest. The payload itself must be padding-free.
        static_assert(std::has_unique_object_representations_v<T>,
                      "EventWheel::save requires a padding-free "
                      "payload");
        s.template scalar<uint64_t>(popFrontier);
        s.template scalar<uint64_t>(count);
        uint64_t written = 0;
        for (uint64_t c = popFrontier; c < popFrontier + horizon();
             ++c) {
            for (const auto &ev : ring[slotOf(c)]) {
                s.template scalar<T>(ev.payload);
                s.template scalar<uint64_t>(ev.cycle);
                ++written;
            }
        }
        for (const auto &ev : overflow) {
            s.template scalar<T>(ev.payload);
            s.template scalar<uint64_t>(ev.cycle);
            ++written;
        }
        KILO_ASSERT(written == count,
                    "EventWheel lost events during save");
    }

    template <typename Source>
    void
    load(Source &s)
    {
        clear();
        popFrontier = s.template scalar<uint64_t>();
        uint64_t n = s.template scalar<uint64_t>();
        for (uint64_t i = 0; i < n; ++i) {
            T payload = s.template scalar<T>();
            uint64_t cycle = s.template scalar<uint64_t>();
            schedule(cycle, payload);
        }
    }
    /** @} */

  private:
    static constexpr uint64_t NoCycle = UINT64_MAX;

    struct Event
    {
        T payload{};
        uint64_t cycle = 0;
    };

    uint64_t horizon() const { return uint64_t(ring.size()); }
    size_t slotOf(uint64_t cycle) const
    {
        return size_t(cycle & (horizon() - 1));
    }

    /** Pop due overflow events, ordered by cycle (cold path). */
    size_t
    popDueOverflow(uint64_t cycle, std::vector<T> &out)
    {
        if (overflow.empty())
            return 0;
        auto due = std::stable_partition(
            overflow.begin(), overflow.end(),
            [cycle](const Event &ev) { return ev.cycle > cycle; });
        if (due == overflow.end())
            return 0;
        std::stable_sort(due, overflow.end(),
                         [](const Event &a, const Event &b) {
                             return a.cycle < b.cycle;
                         });
        size_t popped = 0;
        for (auto it = due; it != overflow.end(); ++it) {
            out.push_back(it->payload);
            ++popped;
        }
        overflow.erase(due, overflow.end());
        count -= popped;
        return popped;
    }

    /** Move overflow events that entered the horizon into the ring.
     *  The frontier only advances, so a migrated event never has to
     *  move back out. */
    void
    migrateOverflow()
    {
        if (overflow.empty())
            return;
        // Stable compaction: same-cycle events keep their insertion
        // order through the migration into the ring.
        size_t keep = 0;
        for (size_t i = 0; i < overflow.size(); ++i) {
            if (overflow[i].cycle - popFrontier < horizon())
                ring[slotOf(overflow[i].cycle)].push_back(overflow[i]);
            else
                overflow[keep++] = overflow[i];
        }
        overflow.resize(keep);
    }

    std::vector<std::vector<Event>> ring;
    std::vector<Event> overflow;
    uint64_t popFrontier = 0;   ///< all cycles below are popped
    mutable uint64_t cachedNext = NoCycle;
    size_t count = 0;
};

} // namespace kilo

