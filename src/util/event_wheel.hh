/**
 * @file
 * Timing wheel that schedules instruction-completion events.
 *
 * The cores schedule "this micro-op finishes at cycle T" events; the
 * wheel pops everything due at the current cycle in O(1) amortised and
 * can report the next non-empty slot so idle periods can be skipped.
 */

#ifndef KILO_UTIL_EVENT_WHEEL_HH
#define KILO_UTIL_EVENT_WHEEL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "src/util/logging.hh"

namespace kilo
{

/**
 * Calendar queue keyed by absolute cycle.
 *
 * Implemented as an ordered map of cycle -> payload vector; the number
 * of distinct in-flight completion cycles is small (bounded by the
 * number of in-flight instructions) so the tree is shallow.
 */
template <typename T>
class EventWheel
{
  public:
    /** Schedule @p payload to pop at absolute @p cycle. */
    void
    schedule(uint64_t cycle, const T &payload)
    {
        slots[cycle].push_back(payload);
        ++count;
    }

    /** Number of pending events. */
    size_t size() const { return count; }

    /** True when nothing is scheduled. */
    bool empty() const { return count == 0; }

    /**
     * Earliest cycle with a pending event.
     * @pre !empty()
     */
    uint64_t
    nextCycle() const
    {
        KILO_ASSERT(!empty(), "nextCycle on empty EventWheel");
        return slots.begin()->first;
    }

    /**
     * Pop every event due at or before @p cycle into @p out.
     * Returns the number of events popped.
     */
    size_t
    popDue(uint64_t cycle, std::vector<T> &out)
    {
        size_t popped = 0;
        while (!slots.empty() && slots.begin()->first <= cycle) {
            auto &vec = slots.begin()->second;
            popped += vec.size();
            for (auto &e : vec)
                out.push_back(e);
            count -= vec.size();
            slots.erase(slots.begin());
        }
        return popped;
    }

    /** Drop all pending events (full-pipeline squash). */
    void
    clear()
    {
        slots.clear();
        count = 0;
    }

  private:
    std::map<uint64_t, std::vector<T>> slots;
    size_t count = 0;
};

} // namespace kilo

#endif // KILO_UTIL_EVENT_WHEEL_HH
