#include "src/util/histogram.hh"

#include <cstdio>

#include "src/util/logging.hh"

namespace kilo
{

Histogram::Histogram(uint64_t bucket_width, size_t num_buckets)
    : width(bucket_width ? bucket_width : 1), counts(num_buckets, 0)
{}

void
Histogram::sample(uint64_t value)
{
    size_t idx = value / width;
    if (idx < counts.size())
        ++counts[idx];
    else
        ++overflow;
    ++total;
    if (value > maxSeen)
        maxSeen = value;
    sum += double(value);
}

uint64_t
Histogram::bucketCount(size_t idx) const
{
    KILO_ASSERT(idx < counts.size(), "Histogram bucket out of range");
    return counts[idx];
}

double
Histogram::bucketFraction(size_t idx) const
{
    if (total == 0)
        return 0.0;
    return double(bucketCount(idx)) / double(total);
}

double
Histogram::fractionBelow(uint64_t value) const
{
    if (total == 0)
        return 0.0;
    uint64_t below = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        uint64_t bucket_lo = i * width;
        if (bucket_lo + width <= value) {
            below += counts[i];
        } else if (bucket_lo < value) {
            // Partial bucket: assume uniform distribution inside it.
            below += counts[i] * (value - bucket_lo) / width;
        }
    }
    return double(below) / double(total);
}

double
Histogram::mean() const
{
    return total ? sum / double(total) : 0.0;
}

uint64_t
Histogram::percentile(double p) const
{
    if (total == 0)
        return 0;
    uint64_t need = uint64_t(double(total) * p + 0.5);
    if (need == 0)
        need = 1;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i];
        if (cumulative >= need)
            return i * width;
    }
    return maxSeen; // quantile falls in the overflow bin
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    overflow = 0;
    total = 0;
    maxSeen = 0;
    sum = 0.0;
}

std::string
Histogram::render(size_t max_rows) const
{
    std::string out;
    char line[128];
    size_t rows = counts.size() < max_rows ? counts.size() : max_rows;
    for (size_t i = 0; i < rows; ++i) {
        std::snprintf(line, sizeof(line), "%6lu-%-6lu %10lu %6.2f%%\n",
                      (unsigned long)(i * width),
                      (unsigned long)((i + 1) * width - 1),
                      (unsigned long)counts[i],
                      100.0 * bucketFraction(i));
        out += line;
    }
    if (overflow) {
        std::snprintf(line, sizeof(line), "%6s %10lu %6.2f%%\n",
                      "over", (unsigned long)overflow,
                      total ? 100.0 * double(overflow) / double(total)
                            : 0.0);
        out += line;
    }
    return out;
}

} // namespace kilo
