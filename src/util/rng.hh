/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The simulator must be bit-exactly reproducible across runs and
 * platforms, so we use a self-contained xorshift64* generator rather
 * than the implementation-defined std:: distributions.
 */

#pragma once

#include <cstdint>

namespace kilo
{

/**
 * xorshift64* pseudo-random generator.
 *
 * Deterministic, seedable and fast; all workload generators draw from
 * an instance of this class so traces are reproducible.
 */
class Rng
{
  public:
    /** Construct with a non-zero seed (zero is remapped internally). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). Returns 0 when bound == 0. */
    uint64_t
    range(uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Re-seed the generator. */
    void
    seed(uint64_t s)
    {
        state = s ? s : 0x9e3779b97f4a7c15ull;
    }

  private:
    uint64_t state;
};

} // namespace kilo

