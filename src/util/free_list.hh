/**
 * @file
 * Slot free list used by the LLRF banks and the instruction arena.
 *
 * Each LLRF bank owns an independent free list (paper, section 3.2:
 * "Each bank has a free list that works independently of the other
 * banks"). The list hands out physical slot indices. The instruction
 * arena (src/core/inst_arena.hh) reuses the same structure, growing
 * it slab by slab via grow() and recycling in FIFO order so a freed
 * slot rests as long as possible before reuse — that maximises the
 * distance between generation reuses of any one slot.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "src/util/logging.hh"
#include "src/util/ring_deque.hh"

namespace kilo
{

/** Free list over a fixed pool of slot indices. */
class FreeList
{
  public:
    /** Recycling order. */
    enum class Order : uint8_t
    {
        Lifo,  ///< most-recently-freed first (LLRF banks)
        Fifo,  ///< least-recently-freed first (instruction arena)
    };

    /** Create a list managing slots [0, num_slots). */
    explicit FreeList(uint32_t num_slots = 0,
                      Order order = Order::Lifo);

    /** True when at least one slot is free. */
    bool hasFree() const { return !free.empty(); }

    /** Number of free slots. */
    uint32_t numFree() const { return uint32_t(free.size()); }

    /** Total number of slots managed. */
    uint32_t numSlots() const { return total; }

    /** Number of slots currently allocated. */
    uint32_t numAllocated() const { return total - numFree(); }

    /** Allocate a slot. @pre hasFree() */
    uint32_t alloc();

    /** Return slot @p idx to the pool. */
    void release(uint32_t idx);

    /** Reset to the fully-free state (checkpoint recovery). */
    void reset();

    /** Add @p extra new slots [total, total + extra), all free. */
    void grow(uint32_t extra);

    /**
     * Serialize / restore: free-queue order and the allocated mask.
     * The slot count must already match (the arena grows itself
     * before loading); load() asserts it. @{
     */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.template scalar<uint32_t>(total);
        free.save(s);
        std::vector<uint8_t> mask((total + 7) / 8, 0);
        for (uint32_t i = 0; i < total; ++i) {
            if (allocated[i])
                mask[i / 8] |= uint8_t(1u << (i % 8));
        }
        s.podVector(mask);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        uint32_t n = s.template scalar<uint32_t>();
        KILO_ASSERT(n == total, "FreeList checkpoint size mismatch");
        free.load(s);
        std::vector<uint8_t> mask;
        s.podVector(mask);
        KILO_ASSERT(mask.size() == size_t((total + 7) / 8),
                    "FreeList checkpoint mask mismatch");
        for (uint32_t i = 0; i < total; ++i)
            allocated[i] = (mask[i / 8] >> (i % 8)) & 1u;
    }
    /** @} */

  private:
    void pushInitialRange(uint32_t lo, uint32_t hi);

    uint32_t total;
    Order order;
    RingDeque<uint32_t> free;
    std::vector<bool> allocated;
};

} // namespace kilo

