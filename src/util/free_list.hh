/**
 * @file
 * Per-bank register free list used by the LLRF.
 *
 * Each LLRF bank owns an independent free list (paper, section 3.2:
 * "Each bank has a free list that works independently of the other
 * banks"). The list hands out physical slot indices.
 */

#ifndef KILO_UTIL_FREE_LIST_HH
#define KILO_UTIL_FREE_LIST_HH

#include <cstdint>
#include <vector>

namespace kilo
{

/** LIFO free list over a fixed pool of slot indices. */
class FreeList
{
  public:
    /** Create a list managing slots [0, num_slots). */
    explicit FreeList(uint32_t num_slots = 0);

    /** True when at least one slot is free. */
    bool hasFree() const { return !free.empty(); }

    /** Number of free slots. */
    uint32_t numFree() const { return uint32_t(free.size()); }

    /** Total number of slots managed. */
    uint32_t numSlots() const { return total; }

    /** Number of slots currently allocated. */
    uint32_t numAllocated() const { return total - numFree(); }

    /** Allocate a slot. @pre hasFree() */
    uint32_t alloc();

    /** Return slot @p idx to the pool. */
    void release(uint32_t idx);

    /** Reset to the fully-free state (checkpoint recovery). */
    void reset();

  private:
    uint32_t total;
    std::vector<uint32_t> free;
    std::vector<bool> allocated;
};

} // namespace kilo

#endif // KILO_UTIL_FREE_LIST_HH
