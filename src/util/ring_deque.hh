/**
 * @file
 * Growable ring-buffer deque for the simulator's hot queues.
 *
 * std::deque allocates and frees block nodes as its ends move, which
 * puts an allocator call on the per-cycle path of every queue that
 * drains and refills (fetch buffer, global order, LSQ, trace window).
 * RingDeque grows geometrically to its high-water mark and never
 * shrinks, so steady-state push/pop traffic touches the heap exactly
 * zero times.
 */

#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/logging.hh"

namespace kilo
{

/** Double-ended queue over a power-of-two ring that only grows. */
template <typename T>
class RingDeque
{
  public:
    explicit RingDeque(size_t initial_capacity = 16)
    {
        size_t cap = 1;
        while (cap < initial_capacity)
            cap <<= 1;
        store.resize(cap);
    }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    size_t capacity() const { return store.size(); }

    /** Element @p pos positions from the head (0 == oldest). */
    T &
    operator[](size_t pos)
    {
        KILO_ASSERT(pos < count, "RingDeque index out of range");
        return store[(head + pos) & mask()];
    }

    const T &
    operator[](size_t pos) const
    {
        KILO_ASSERT(pos < count, "RingDeque index out of range");
        return store[(head + pos) & mask()];
    }

    T &
    front()
    {
        KILO_ASSERT(count, "front on empty RingDeque");
        return store[head];
    }

    const T &
    front() const
    {
        KILO_ASSERT(count, "front on empty RingDeque");
        return store[head];
    }

    T &
    back()
    {
        KILO_ASSERT(count, "back on empty RingDeque");
        return store[(head + count - 1) & mask()];
    }

    const T &
    back() const
    {
        KILO_ASSERT(count, "back on empty RingDeque");
        return store[(head + count - 1) & mask()];
    }

    void
    push_back(const T &value)
    {
        if (count == store.size())
            growStore();
        store[(head + count) & mask()] = value;
        ++count;
    }

    void
    pop_front()
    {
        KILO_ASSERT(count, "pop_front on empty RingDeque");
        store[head] = T();
        head = (head + 1) & mask();
        --count;
    }

    void
    pop_back()
    {
        KILO_ASSERT(count, "pop_back on empty RingDeque");
        store[(head + count - 1) & mask()] = T();
        --count;
    }

    /** Remove the element @p pos positions from the head (O(n)). */
    void
    erase(size_t pos)
    {
        KILO_ASSERT(pos < count, "RingDeque erase out of range");
        for (size_t i = pos; i + 1 < count; ++i)
            (*this)[i] = (*this)[i + 1];
        pop_back();
    }

    void
    clear()
    {
        while (count)
            pop_front();
    }

    /**
     * Serialize / restore contents in logical (head-first) order.
     * Capacity is not part of the image; load() re-grows as needed,
     * so the restored deque is behaviourally identical even when its
     * ring happens to be a different size. Templated on the sink /
     * source type to keep src/util free of ckpt dependencies. @{
     */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "RingDeque::save requires a POD element");
        std::vector<T> linear(count);
        for (size_t i = 0; i < count; ++i)
            linear[i] = (*this)[i];
        s.podVector(linear);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        std::vector<T> linear;
        s.podVector(linear);
        clear();
        for (const T &value : linear)
            push_back(value);
    }
    /** @} */

  private:
    size_t mask() const { return store.size() - 1; }

    void
    growStore()
    {
        std::vector<T> bigger(store.size() * 2);
        for (size_t i = 0; i < count; ++i)
            bigger[i] = std::move((*this)[i]);
        store.swap(bigger);
        head = 0;
    }

    std::vector<T> store;
    size_t head = 0;
    size_t count = 0;
};

} // namespace kilo

