/**
 * @file
 * Bucketed histogram used for the decode->issue distance analysis
 * (Figure 3 of the paper) and general latency distributions.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/logging.hh"

namespace kilo
{

/**
 * Fixed-bucket-width histogram over [0, max); samples beyond the last
 * bucket accumulate in an overflow bin.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width  width of each bucket in sample units
     * @param num_buckets   number of regular buckets
     */
    Histogram(uint64_t bucket_width, size_t num_buckets);

    /** Record one sample. */
    void sample(uint64_t value);

    /** Total number of samples recorded. */
    uint64_t samples() const { return total; }

    /** Count in regular bucket @p idx. */
    uint64_t bucketCount(size_t idx) const;

    /** Count of samples past the last regular bucket. */
    uint64_t overflowCount() const { return overflow; }

    /** Number of regular buckets. */
    size_t numBuckets() const { return counts.size(); }

    /** Width of each bucket. */
    uint64_t bucketWidth() const { return width; }

    /** Fraction (0..1) of samples in bucket @p idx. */
    double bucketFraction(size_t idx) const;

    /** Fraction of samples strictly below @p value. */
    double fractionBelow(uint64_t value) const;

    /** Arithmetic mean of all samples. */
    double mean() const;

    /** Largest sample recorded (exact, 0 when empty). */
    uint64_t maxSample() const { return maxSeen; }

    /**
     * Value at quantile @p p (0..1], at bucket granularity: the lower
     * bound of the first bucket whose cumulative count reaches p of
     * the samples (exact for width-1 histograms). Overflow samples
     * resolve to maxSample(). Returns 0 when empty.
     */
    uint64_t percentile(double p) const;

    /** Reset all state. */
    void reset();

    /** Render an ASCII table: one "lo-hi count pct" row per bucket. */
    std::string render(size_t max_rows = 64) const;

    /** Serialize / restore. Bucket geometry is configuration; load()
     *  asserts it matches. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.template scalar<uint64_t>(width);
        s.podVector(counts);
        s.template scalar<uint64_t>(overflow);
        s.template scalar<uint64_t>(total);
        s.template scalar<uint64_t>(maxSeen);
        s.template scalar<double>(sum);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        size_t buckets = counts.size();
        uint64_t w = s.template scalar<uint64_t>();
        KILO_ASSERT(w == width, "Histogram checkpoint width mismatch");
        s.podVector(counts);
        KILO_ASSERT(counts.size() == buckets,
                    "Histogram checkpoint bucket-count mismatch");
        overflow = s.template scalar<uint64_t>();
        total = s.template scalar<uint64_t>();
        maxSeen = s.template scalar<uint64_t>();
        sum = s.template scalar<double>();
    }
    /** @} */

  private:
    uint64_t width;
    std::vector<uint64_t> counts;
    uint64_t overflow = 0;
    uint64_t total = 0;
    uint64_t maxSeen = 0;
    double sum = 0.0;
};

} // namespace kilo

