/**
 * @file
 * Dense bit vector used for the Low-Locality Bit Vector (LLBV).
 *
 * The D-KIP keeps one bit per logical register recording whether the
 * most recent definition of that register is a long-latency value.
 * This class models that structure plus the bulk-clear operation that
 * checkpoint recovery performs.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/logging.hh"

namespace kilo
{

/** Fixed-width bit vector with popcount support. */
class BitVector
{
  public:
    /** Create a vector of @p n bits, all clear. */
    explicit BitVector(size_t n = 0);

    /** Number of bits. */
    size_t size() const { return bits; }

    /** Set bit @p idx. */
    void set(size_t idx);

    /** Clear bit @p idx. */
    void clear(size_t idx);

    /** Read bit @p idx. */
    bool test(size_t idx) const;

    /** Clear every bit (checkpoint-recovery semantics). */
    void clearAll();

    /** Number of set bits. */
    size_t popcount() const;

    /** True when no bit is set. */
    bool none() const { return popcount() == 0; }

    /** Serialize / restore. load() adopts the saved width so that
     *  default-constructed vectors (e.g. checkpoint-stack entries
     *  being rebuilt) restore correctly. @{ */
    template <typename Sink>
    void
    save(Sink &s) const
    {
        s.template scalar<uint64_t>(bits);
        s.podVector(words);
    }

    template <typename Source>
    void
    load(Source &s)
    {
        uint64_t n = s.template scalar<uint64_t>();
        s.podVector(words);
        KILO_ASSERT(words.size() == size_t((n + 63) / 64),
                    "BitVector checkpoint width/word mismatch");
        bits = size_t(n);
    }
    /** @} */

  private:
    size_t bits;
    std::vector<uint64_t> words;
};

} // namespace kilo

