/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal simulator invariant was violated; aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something is modelled approximately; execution continues.
 */

#pragma once

#include <cstdio>
#include <cstdlib>

namespace kilo
{

/** Abort with a message: simulator bug, never the user's fault. */
#define KILO_PANIC(...)                                                  \
    do {                                                                 \
        std::fprintf(stderr, "panic: %s:%d: ", __FILE__, __LINE__);      \
        std::fprintf(stderr, __VA_ARGS__);                               \
        std::fprintf(stderr, "\n");                                      \
        std::abort();                                                    \
    } while (0)

/** Exit with a message: invalid configuration or arguments. */
#define KILO_FATAL(...)                                                  \
    do {                                                                 \
        std::fprintf(stderr, "fatal: ");                                 \
        std::fprintf(stderr, __VA_ARGS__);                               \
        std::fprintf(stderr, "\n");                                      \
        std::exit(1);                                                    \
    } while (0)

/** Non-fatal diagnostic. */
#define KILO_WARN(...)                                                   \
    do {                                                                 \
        std::fprintf(stderr, "warn: ");                                  \
        std::fprintf(stderr, __VA_ARGS__);                               \
        std::fprintf(stderr, "\n");                                      \
    } while (0)

/** Cheap always-on assertion used for structural invariants. */
#define KILO_ASSERT(cond, ...)                                           \
    do {                                                                 \
        if (!(cond)) {                                                   \
            KILO_PANIC(__VA_ARGS__);                                     \
        }                                                                \
    } while (0)

} // namespace kilo

