/**
 * @file
 * Interval behaviour signatures and deterministic k-means clustering
 * — the offline half of sampled simulation (src/sample/DESIGN.md).
 *
 * A run's measured region is split into fixed-size intervals and each
 * interval is fingerprinted by a small feature vector computed from a
 * purely functional walk of the instruction stream (no timing):
 *
 *   - the fraction of instructions in each OpClass (the SimPoint
 *     "basic block vector" analogue for a trace-level ISA),
 *   - the taken rate of its branches (control behaviour),
 *   - a branch-predictability proxy: the mispredict rate of a small
 *     shadow gshare run over the stream (two intervals can share a
 *     taken rate yet differ wildly in predictability), and
 *   - a cache-miss proxy: the miss rate of its memory accesses
 *     against a direct-mapped tag array (memory behaviour the
 *     opcode mix alone cannot see).
 *
 * Signatures are clustered with a deterministic k-means (evenly
 * spaced seeding, fixed iteration cap, lowest-index tie-breaks); one
 * representative interval per cluster is then simulated in detail and
 * the whole run's statistics are reconstructed from the weighted
 * cluster measurements (sample::runSampled).
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/isa/micro_op.hh"
#include "src/wload/workload.hh"

namespace kilo::sample
{

/** Feature-vector dimensions: OpClass fractions + taken rate +
 *  mispredict-proxy rate + cache-miss proxy rate. Every dimension is
 *  a fraction in [0, 1], so unweighted Euclidean distance is
 *  meaningful. */
constexpr int SigDims = isa::NumOpClasses + 3;

/** Entries in the direct-mapped miss-proxy tag array and the shadow
 *  gshare counter table. With 64-byte lines the tag array models a
 *  256 KiB probe filter — coarse on purpose: the proxies only have
 *  to *separate* interval behaviours, not predict the simulated
 *  hierarchy's miss rate or the real predictor's accuracy. */
constexpr size_t ProxyEntries = 4096;

/** One interval's behaviour fingerprint. */
struct Signature
{
    std::array<double, SigDims> v{};

    /** Squared Euclidean distance. */
    double distance2(const Signature &other) const;
};

/** Fingerprints of every interval of a measured region. */
struct SignaturePass
{
    std::vector<Signature> signatures;
    std::vector<uint64_t> lengths;  ///< instructions per interval
};

/**
 * Walk @p workload functionally and fingerprint the measured region:
 * skip @p skip_insts (the warm-up region), then fingerprint
 * @p measure_insts split into @p interval_insts-sized intervals (the
 * final interval carries the remainder and may be shorter). The
 * workload is left mid-stream; callers reset() it before reuse.
 */
SignaturePass fingerprintIntervals(wload::Workload &workload,
                                   uint64_t skip_insts,
                                   uint64_t measure_insts,
                                   uint64_t interval_insts);

/** k-means result over a signature set. */
struct Clustering
{
    /** interval index -> cluster id (dense, [0, representatives)). */
    std::vector<uint32_t> assignment;

    /** cluster id -> representative interval index (the member
     *  closest to the final centroid; lowest index on ties). */
    std::vector<uint32_t> representatives;
};

/**
 * Deterministic Lloyd k-means: centroids seeded at evenly spaced
 * signature indices, at most @p iterations refinement passes,
 * lowest-index winners on every tie. Clusters that end up empty are
 * dropped, so the returned cluster ids are dense. @p k is clamped to
 * the signature count; an empty input yields an empty clustering.
 */
Clustering clusterSignatures(const std::vector<Signature> &signatures,
                             uint32_t k, int iterations = 25);

} // namespace kilo::sample

