#include "src/sample/sampled_run.hh"

#include <algorithm>
#include <cmath>

#include "src/util/logging.hh"

namespace kilo::sample
{

namespace
{

/** Detailed measurement of one representative interval. */
struct RepMeasure
{
    stats::Snapshot snap;     ///< per-interval (stats reset before)
    uint64_t committed = 0;   ///< instructions actually measured
    uint64_t cycles = 0;
    double weight = 0.0;      ///< instructions the cluster stands for
};

/** Additive stats scale with the cluster weight; point-in-time stats
 *  (gauges: ratios, peaks, percentiles) average instead. */
bool
isAdditive(const stats::Snapshot::Entry &e)
{
    return e.kind != stats::Kind::Gauge;
}

/**
 * How many instructions the machine can hold in flight — the bias
 * knob of sampled measurement. A representative interval starts from
 * a drained pipeline, so the first ~window instructions execute at
 * fill-up IPC, not steady-state IPC; each interval is therefore
 * preceded by a detailed (but unmeasured) warm-up run a few windows
 * long. Kilo-instruction machines need this most: a 2048-entry
 * virtual window is a real fraction of any reasonable interval.
 */
uint64_t
windowHint(const sim::MachineConfig &machine)
{
    switch (machine.kind) {
      case sim::MachineKind::Ooo:
        return machine.cp.robSize;
      case sim::MachineKind::Kilo:
        return machine.kilo.cp.robSize + machine.kilo.sliqCapacity;
      case sim::MachineKind::Dkip:
        return machine.dkip.cp.robSize +
               2 * machine.dkip.llibCapacity;
    }
    return 256;
}

} // anonymous namespace

SampledResult
runSampled(const sim::MachineConfig &machine,
           const std::string &workload_name,
           const mem::MemConfig &mem_config,
           const sim::RunConfig &run_config, obs::Profiler *profiler)
{
    wload::WorkloadPtr wl =
        sim::openWorkload(workload_name, run_config);
    return runSampled(machine, *wl, mem_config, run_config,
                      profiler);
}

SampledResult
runSampled(const sim::MachineConfig &machine, wload::Workload &workload,
           const mem::MemConfig &mem_config,
           const sim::RunConfig &run_config, obs::Profiler *profiler)
{
    const uint64_t W = run_config.warmupInsts;
    const uint64_t M = run_config.measureInsts;
    KILO_ASSERT(M > 0, "sampled run needs a measured region");
    uint64_t L = run_config.intervalInsts;
    if (!L)
        L = std::max<uint64_t>(M / 50, 1);
    if (L > M)
        L = M;

    // Phase 1: functional fingerprint of every interval.
    SignaturePass pass = [&] {
        obs::Profiler::Scope scope(profiler, "fingerprint");
        return fingerprintIntervals(workload, W, M, L);
    }();
    workload.reset();

    // Phase 2: cluster and pick representatives.
    Clustering clus = [&] {
        obs::Profiler::Scope scope(profiler, "cluster");
        return clusterSignatures(pass.signatures,
                                 run_config.numClusters);
    }();

    SampledResult out;
    out.totalIntervals = pass.signatures.size();
    out.simulatedIntervals = clus.representatives.size();
    out.assignment = clus.assignment;
    out.representatives = clus.representatives;

    // Cluster weight = instructions its member intervals cover.
    std::vector<double> weight(clus.representatives.size(), 0.0);
    for (size_t i = 0; i < clus.assignment.size(); ++i)
        weight[clus.assignment[i]] += double(pass.lengths[i]);

    // Phase 3: one core walks the stream once, representative to
    // representative in time order: block-skip the gap, functionally
    // warm the last W instructions, then measure the interval in
    // detail with freshly reset statistics.
    std::vector<uint32_t> order(clus.representatives.size());
    std::vector<RepMeasure> reps(clus.representatives.size());
    {
        obs::Profiler::Scope phase(profiler, "simulate");
        auto core =
            sim::Simulator::makeCore(machine, workload, mem_config);
        for (const auto &region : workload.regions())
            core->memory().prewarm(region.base, region.bytes);

        for (uint32_t c = 0; c < order.size(); ++c)
            order[c] = c;
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) {
                      return clus.representatives[a] <
                             clus.representatives[b];
                  });

        const uint64_t detail_warm =
            4 * windowHint(machine) + 2000;

        uint64_t cursor = 0;
        for (uint32_t c : order) {
            uint64_t r = clus.representatives[c];
            uint64_t start = W + r * L;
            // Unmeasured detailed run that refills the window before the
            // interval, preceded by W instructions of functional warming
            // and a block-skip over the rest of the gap.
            uint64_t detail_start =
                start > detail_warm ? start - detail_warm : 0;
            uint64_t warm_start =
                detail_start > W ? detail_start - W : 0;
            if (warm_start > cursor) {
                out.skippedInsts += warm_start - cursor;
                core->fastForward(warm_start,
                                  core::PipelineBase::FfMode::Skip);
                cursor = warm_start;
            }
            if (detail_start > cursor) {
                out.warmInsts += detail_start - cursor;
                core->fastForward(detail_start,
                                  core::PipelineBase::FfMode::Warm);
                cursor = detail_start;
            }
            if (start > cursor) {
                out.detailInsts += start - cursor;
                core->run(start - cursor);
            }
            core->resetStats();
            core->run(pass.lengths[r]);
            RepMeasure &m = reps[c];
            m.snap = core->statsRegistry().snapshot();
            m.committed = core->stats().committed;
            m.cycles = core->stats().cycles;
            m.weight = weight[c];
            out.detailInsts += m.committed;
            cursor = start + pass.lengths[r];
        }
    } // simulate scope

    // Phase 4: reconstruct the whole-run snapshot. Additive stats
    // (counters, histogram sample counts) become weighted sums of
    // the per-interval rates; gauges become weight-averaged values.
    obs::Profiler::Scope phase(profiler, "reconstruct");
    KILO_ASSERT(!reps.empty(), "sampled run selected no intervals");
    double total_weight = 0.0;
    for (const RepMeasure &m : reps)
        total_weight += m.weight;

    double est_committed = 0.0, est_cycles = 0.0;
    for (const RepMeasure &m : reps) {
        double scale = m.weight / double(m.committed);
        est_committed += scale * double(m.committed);
        est_cycles += scale * double(m.cycles);
    }

    stats::Snapshot est = reps[order[0]].snap;  // layout template
    for (size_t e = 0; e < est.entries.size(); ++e) {
        stats::Snapshot::Entry &entry = est.entries[e];
        double acc = 0.0;
        for (const RepMeasure &m : reps) {
            const stats::Value &v = m.snap.entries[e].value;
            if (isAdditive(entry))
                acc += (m.weight / double(m.committed)) *
                       v.asDouble();
            else
                acc += (m.weight / total_weight) * v.asDouble();
        }
        if (entry.value.real)
            entry.value = stats::Value::ofReal(acc);
        else
            entry.value = stats::Value::ofInt(
                uint64_t(std::llround(std::max(acc, 0.0))));
    }

    // The headline metric gets the best estimator available: the
    // ratio of the estimated totals, not an average of ratios.
    double ipc = est_cycles > 0.0 ? est_committed / est_cycles : 0.0;
    for (auto &entry : est.entries)
        if (entry.name == "ipc" && entry.value.real)
            entry.value = stats::Value::ofReal(ipc);

    // Predicted uncertainty: weighted cross-cluster dispersion of
    // each row stat's per-instruction rate (or gauge value),
    // relative to its weighted mean.
    for (size_t e = 0; e < est.entries.size(); ++e) {
        const stats::Snapshot::Entry &entry = est.entries[e];
        if (!entry.inRow)
            continue;
        auto rate = [&](const RepMeasure &m) {
            double v = m.snap.entries[e].value.asDouble();
            return isAdditive(entry) ? v / double(m.committed) : v;
        };
        double mean = 0.0;
        for (const RepMeasure &m : reps)
            mean += (m.weight / total_weight) * rate(m);
        double var = 0.0;
        for (const RepMeasure &m : reps) {
            double d = rate(m) - mean;
            var += (m.weight / total_weight) * d * d;
        }
        StatError err;
        err.name = entry.name;
        err.relSigma =
            mean != 0.0 ? std::sqrt(var) / std::fabs(mean) : 0.0;
        out.errorBars.push_back(std::move(err));
    }

    sim::RunResult &res = out.result;
    res.machine = machine.name;
    res.workload = workload.name();
    res.ipc = ipc;
    res.aborted = false;
    res.snapshot = std::move(est);
    res.stats.committed =
        uint64_t(std::llround(std::max(est_committed, 0.0)));
    res.stats.cycles =
        uint64_t(std::llround(std::max(est_cycles, 0.0)));
    return out;
}

} // namespace kilo::sample
