#include "src/sample/signature.hh"

#include <algorithm>
#include <limits>

#include "src/util/logging.hh"

namespace kilo::sample
{

double
Signature::distance2(const Signature &other) const
{
    double d2 = 0.0;
    for (int i = 0; i < SigDims; ++i) {
        double d = v[i] - other.v[i];
        d2 += d * d;
    }
    return d2;
}

namespace
{

/** Running per-interval feature counts, folded into a Signature at
 *  each interval boundary. */
struct IntervalCounts
{
    std::array<uint64_t, isa::NumOpClasses> perClass{};
    uint64_t insts = 0;
    uint64_t branches = 0;
    uint64_t taken = 0;
    uint64_t mispredicts = 0;
    uint64_t memOps = 0;
    uint64_t proxyMisses = 0;

    Signature
    fold() const
    {
        Signature sig;
        double n = insts ? double(insts) : 1.0;
        for (int c = 0; c < isa::NumOpClasses; ++c)
            sig.v[c] = double(perClass[c]) / n;
        sig.v[isa::NumOpClasses] =
            branches ? double(taken) / double(branches) : 0.0;
        sig.v[isa::NumOpClasses + 1] =
            branches ? double(mispredicts) / double(branches) : 0.0;
        sig.v[isa::NumOpClasses + 2] =
            memOps ? double(proxyMisses) / double(memOps) : 0.0;
        return sig;
    }

    void
    clear()
    {
        *this = IntervalCounts{};
    }
};

/** Direct-mapped tag array; the miss proxy of the signature. */
class MissProxy
{
  public:
    MissProxy() : tags(ProxyEntries, EmptyTag) {}

    /** Record @p addr; true when it missed. */
    bool
    access(uint64_t addr)
    {
        uint64_t line = addr >> 6;  // 64-byte lines
        size_t set = size_t(line & (ProxyEntries - 1));
        if (tags[set] == line)
            return false;
        tags[set] = line;
        return true;
    }

  private:
    static constexpr uint64_t EmptyTag = ~uint64_t(0);
    std::vector<uint64_t> tags;
};

/** Shadow gshare; the branch-predictability proxy. */
class PredictProxy
{
  public:
    PredictProxy() : counters(ProxyEntries, 2) {}

    /** Predict-and-train on one branch; true on a mispredict. */
    bool
    access(uint64_t pc, bool taken)
    {
        size_t idx =
            size_t(((pc >> 2) ^ ghr) & (ProxyEntries - 1));
        uint8_t &ctr = counters[idx];
        bool predicted = ctr >= 2;
        if (taken && ctr < 3)
            ctr++;
        else if (!taken && ctr > 0)
            ctr--;
        ghr = (ghr << 1) | (taken ? 1 : 0);
        return predicted != taken;
    }

  private:
    std::vector<uint8_t> counters;  ///< 2-bit saturating
    uint64_t ghr = 0;
};

} // anonymous namespace

SignaturePass
fingerprintIntervals(wload::Workload &workload, uint64_t skip_insts,
                     uint64_t measure_insts, uint64_t interval_insts)
{
    KILO_ASSERT(interval_insts > 0,
                "sampling needs a positive interval length");
    if (skip_insts)
        workload.skip(skip_insts);

    SignaturePass pass;
    MissProxy proxy;
    PredictProxy bp;
    IntervalCounts counts;
    isa::MicroOp buf[256];

    uint64_t remaining = measure_insts;
    uint64_t interval_left = interval_insts;
    while (remaining) {
        size_t want = size_t(std::min<uint64_t>(
            {remaining, interval_left, uint64_t(256)}));
        size_t got = workload.nextBlock(buf, want);
        KILO_ASSERT(got > 0, "workload stream ended mid-fingerprint");
        for (size_t i = 0; i < got; ++i) {
            const isa::MicroOp &op = buf[i];
            counts.perClass[size_t(op.cls)]++;
            if (op.isBranch()) {
                counts.branches++;
                counts.taken += op.taken ? 1 : 0;
                counts.mispredicts +=
                    bp.access(op.pc, op.taken) ? 1 : 0;
            } else if (op.isMem()) {
                counts.memOps++;
                counts.proxyMisses += proxy.access(op.effAddr) ? 1 : 0;
            }
        }
        counts.insts += got;
        remaining -= got;
        interval_left -= got;
        if (interval_left == 0 || remaining == 0) {
            pass.signatures.push_back(counts.fold());
            pass.lengths.push_back(counts.insts);
            counts.clear();
            interval_left = interval_insts;
        }
    }
    return pass;
}

Clustering
clusterSignatures(const std::vector<Signature> &signatures, uint32_t k,
                  int iterations)
{
    Clustering out;
    size_t n = signatures.size();
    if (n == 0)
        return out;
    if (k == 0)
        k = 1;
    if (uint64_t(k) > n)
        k = uint32_t(n);

    // Evenly spaced seeding over the time axis: program phases are
    // contiguous in time, so spreading the seeds across the run
    // starts every phase near a centroid — and it is deterministic.
    std::vector<Signature> centroids(k);
    for (uint32_t c = 0; c < k; ++c)
        centroids[c] = signatures[size_t(c) * n / k];

    out.assignment.assign(n, 0);
    for (int iter = 0; iter < iterations; ++iter) {
        // Assign: nearest centroid, lowest id on ties.
        bool moved = false;
        for (size_t i = 0; i < n; ++i) {
            uint32_t best = 0;
            double best_d2 = std::numeric_limits<double>::infinity();
            for (uint32_t c = 0; c < k; ++c) {
                double d2 = signatures[i].distance2(centroids[c]);
                if (d2 < best_d2) {
                    best_d2 = d2;
                    best = c;
                }
            }
            if (out.assignment[i] != best) {
                out.assignment[i] = best;
                moved = true;
            }
        }
        if (!moved && iter > 0)
            break;

        // Update: centroid = member mean (empty clusters keep their
        // previous centroid and may re-acquire members later).
        std::vector<Signature> sums(k);
        std::vector<uint64_t> members(k, 0);
        for (size_t i = 0; i < n; ++i) {
            uint32_t c = out.assignment[i];
            members[c]++;
            for (int d = 0; d < SigDims; ++d)
                sums[c].v[d] += signatures[i].v[d];
        }
        for (uint32_t c = 0; c < k; ++c) {
            if (!members[c])
                continue;
            for (int d = 0; d < SigDims; ++d)
                centroids[c].v[d] = sums[c].v[d] / double(members[c]);
        }
    }

    // Drop empty clusters (dense ids) and pick representatives.
    std::vector<uint32_t> remap(k, 0);
    std::vector<uint64_t> members(k, 0);
    for (size_t i = 0; i < n; ++i)
        members[out.assignment[i]]++;
    uint32_t dense = 0;
    for (uint32_t c = 0; c < k; ++c)
        remap[c] = members[c] ? dense++ : 0;
    out.representatives.assign(dense, 0);
    std::vector<double> best_d2(
        dense, std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < n; ++i) {
        uint32_t c = out.assignment[i];
        uint32_t d = remap[c];
        out.assignment[i] = d;
        double dist = signatures[i].distance2(centroids[c]);
        if (dist < best_d2[d]) {  // strict: lowest index wins ties
            best_d2[d] = dist;
            out.representatives[d] = uint32_t(i);
        }
    }
    return out;
}

} // namespace kilo::sample
