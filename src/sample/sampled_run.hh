/**
 * @file
 * Sampled simulation: estimate a whole run's statistics from detailed
 * simulation of a few cluster-representative intervals.
 *
 * The classic SimPoint recipe on top of sim::Session's machinery
 * (full methodology in src/sample/DESIGN.md):
 *
 *   1. fingerprint the measured region's fixed-size intervals with a
 *      functional walk (src/sample/signature.hh);
 *   2. k-means-cluster the signatures and pick one representative
 *      interval per cluster;
 *   3. simulate only the representatives, in stream order, on ONE
 *      core — block-skipping the gaps and functionally warming
 *      caches + branch predictor over the last warmupInsts before
 *      each representative (core::PipelineBase::fastForward);
 *   4. reconstruct whole-run statistics as cluster-weighted sums of
 *      the per-representative stats::Registry snapshots, with a
 *      cross-cluster dispersion error bar per row stat.
 *
 * Everything is deterministic — seeding, iteration order, tie
 * breaks, reconstruction arithmetic — so a sampled job emits the
 * same JSONL row from any process, which is what lets sampled sweep
 * matrices shard exactly like exact ones (KILOSHARD manifests carry
 * the sampling directives; see src/shard/).
 *
 * Entry points: SamplingMode::Sampled in RunConfig routes
 * Simulator::run (and every SweepEngine matrix) here; call
 * runSampled() directly to also get the clustering and error bars.
 */

#pragma once

#include <string>
#include <vector>

#include "src/obs/profiler.hh"
#include "src/sample/signature.hh"
#include "src/sim/simulator.hh"

namespace kilo::sample
{

/** Predicted relative uncertainty of one reconstructed row stat. */
struct StatError
{
    std::string name;
    double relSigma = 0.0;  ///< weighted cross-cluster dispersion / mean
};

/** A sampled run's estimate plus its provenance. */
struct SampledResult
{
    /** Reconstructed whole-run result; runResultJson-able like an
     *  exact RunResult (counters are weighted sums, gauges weighted
     *  means, ipc rebuilt from estimated committed/cycles). */
    sim::RunResult result;

    uint64_t totalIntervals = 0;      ///< intervals fingerprinted
    uint64_t simulatedIntervals = 0;  ///< representatives simulated
    uint64_t detailInsts = 0;         ///< instructions in detail
    uint64_t warmInsts = 0;           ///< functionally warmed
    uint64_t skippedInsts = 0;        ///< block-skipped

    /** interval index -> cluster id. */
    std::vector<uint32_t> assignment;

    /** cluster id -> representative interval index. */
    std::vector<uint32_t> representatives;

    /** Per row-stat predicted uncertainty, registration order. */
    std::vector<StatError> errorBars;
};

/**
 * Run (machine, workload, memory) sampled. @p run_config supplies
 * the region sizes (warmupInsts / measureInsts), the interval length
 * (intervalInsts; 0 = measureInsts / 50), and the cluster count
 * (numClusters); samplingMode itself is ignored here — calling this
 * function IS the opt-in. The workload-name overload resolves names
 * exactly like Session (presets, "trace:<path>", tracePath).
 *
 * @p profiler, when non-null, receives one wall-time phase per
 * methodology stage — "fingerprint", "cluster", "simulate",
 * "reconstruct" — mirroring Session::attachProfiler's
 * warmup/measure/finish phases for exact runs. Null costs nothing
 * and simulated results are identical either way. @{
 */
SampledResult runSampled(const sim::MachineConfig &machine,
                         const std::string &workload_name,
                         const mem::MemConfig &mem_config,
                         const sim::RunConfig &run_config,
                         obs::Profiler *profiler = nullptr);

SampledResult runSampled(const sim::MachineConfig &machine,
                         wload::Workload &workload,
                         const mem::MemConfig &mem_config,
                         const sim::RunConfig &run_config,
                         obs::Profiler *profiler = nullptr);
/** @} */

} // namespace kilo::sample

