/**
 * @file
 * Reproduces Figures 11 and 12 (and the section 4.4 locality rows):
 * IPC under L2 capacities from 64KB to 4MB for R10-256 and four
 * D-KIP configurations (INO-INO, OOO20-INO, OOO80-INO, OOO80-OOO40),
 * on both suites, plus the fraction of committed instructions the
 * Cache Processor executes at the sweep endpoints.
 *
 * Expected shape: integer IPC climbs steadily with L2 size on every
 * machine; FP IPC on the D-KIP is largely cache-insensitive (the MP
 * processes the extra misses), while the conventional R10-256 gains
 * ~1.5x across the sweep.
 *
 * Each suite runs as one SweepEngine::matrix (machines × benches ×
 * L2 points), inheriting KILO_SWEEP_THREADS and emitting the
 * standard JSONL rows on stderr like the other figure benches.
 */

#include <cstdio>
#include <iostream>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    using core::SchedPolicy;
    const std::vector<uint64_t> l2_kb{64, 128, 256, 512, 1024, 2048,
                                      4096};
    struct Machine
    {
        std::string label;
        MachineConfig cfg;
    };
    const std::vector<Machine> machines{
        {"R10-256", MachineConfig::r10_256()},
        {"INO-INO",
         MachineConfig::dkipSched(SchedPolicy::InOrder, 40,
                                  SchedPolicy::InOrder, 20)},
        {"OOO20-INO",
         MachineConfig::dkipSched(SchedPolicy::OutOfOrder, 20,
                                  SchedPolicy::InOrder, 20)},
        {"OOO80-INO",
         MachineConfig::dkipSched(SchedPolicy::OutOfOrder, 80,
                                  SchedPolicy::InOrder, 20)},
        {"OOO80-OOO40",
         MachineConfig::dkipSched(SchedPolicy::OutOfOrder, 80,
                                  SchedPolicy::OutOfOrder, 40)},
    };
    RunConfig rc = RunConfig::sweep();

    std::vector<MachineConfig> machine_cfgs;
    for (const auto &m : machines)
        machine_cfgs.push_back(m.cfg);
    std::vector<mem::MemConfig> mem_cfgs;
    for (uint64_t kb : l2_kb)
        mem_cfgs.push_back(mem::MemConfig::withL2Size(kb * 1024));

    SweepEngine engine;
    for (auto suite :
         {std::pair{"Figure 11 (SpecINT-like)", intSuite()},
          std::pair{"Figure 12 (SpecFP-like)", fpSuite()}}) {
        auto jobs = SweepEngine::matrix(machine_cfgs, suite.second,
                                        mem_cfgs, rc);
        auto results = engine.run(jobs);
        writeJsonRows(std::cerr, results);

        std::vector<std::string> headers{"config"};
        for (uint64_t kb : l2_kb)
            headers.push_back(std::to_string(kb) + "KB");
        headers.push_back("max/min");
        Table table(headers);

        // matrix() is machine-major, then workload, then memory:
        // results[(mi*B + bi)*M + li] for B benches, M L2 points.
        const size_t B = suite.second.size();
        const size_t M = mem_cfgs.size();
        for (size_t mi = 0; mi < machines.size(); ++mi) {
            std::vector<std::string> row{machines[mi].label};
            double lo = 1e9, hi = 0.0;
            double cp_frac_small = 0.0, cp_frac_big = 0.0;
            for (size_t li = 0; li < M; ++li) {
                std::vector<RunResult> cell;
                cell.reserve(B);
                for (size_t bi = 0; bi < B; ++bi)
                    cell.push_back(results[(mi * B + bi) * M + li]);
                double ipc = meanIpc(cell);
                row.push_back(Table::num(ipc));
                lo = std::min(lo, ipc);
                hi = std::max(hi, ipc);
                if (li == 0)
                    cp_frac_small = 1.0 - meanMpFraction(cell);
                if (li == M - 1)
                    cp_frac_big = 1.0 - meanMpFraction(cell);
            }
            row.push_back(Table::num(hi / lo));
            table.addRow(row);
            if (machines[mi].cfg.kind == MachineKind::Dkip) {
                std::printf("  [%s] CP executes %.0f%% of commits at "
                            "%luKB, %.0f%% at %luKB\n",
                            machines[mi].label.c_str(),
                            100.0 * cp_frac_small,
                            (unsigned long)l2_kb.front(),
                            100.0 * cp_frac_big,
                            (unsigned long)l2_kb.back());
            }
        }
        std::printf("== %s ==\n%s\n", suite.first,
                    table.render().c_str());
    }

    std::printf("paper reference: R10-256 gains ~1.55x over the "
                "sweep; the most aggressive D-KIP only ~1.18x on FP; "
                "CP share rises 67%% -> 77%% (FP)\n");
    return 0;
}
