/**
 * @file
 * Reproduces Figures 11 and 12 (and the section 4.4 locality rows):
 * IPC under L2 capacities from 64KB to 4MB for R10-256 and four
 * D-KIP configurations (INO-INO, OOO20-INO, OOO80-INO, OOO80-OOO40),
 * on both suites, plus the fraction of committed instructions the
 * Cache Processor executes at the sweep endpoints.
 *
 * Expected shape: integer IPC climbs steadily with L2 size on every
 * machine; FP IPC on the D-KIP is largely cache-insensitive (the MP
 * processes the extra misses), while the conventional R10-256 gains
 * ~1.5x across the sweep.
 */

#include <cstdio>

#include "src/sim/sweep.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    using core::SchedPolicy;
    const std::vector<uint64_t> l2_kb{64, 128, 256, 512, 1024, 2048,
                                      4096};
    struct Machine
    {
        std::string label;
        MachineConfig cfg;
    };
    const std::vector<Machine> machines{
        {"R10-256", MachineConfig::r10_256()},
        {"INO-INO",
         MachineConfig::dkipSched(SchedPolicy::InOrder, 40,
                                  SchedPolicy::InOrder, 20)},
        {"OOO20-INO",
         MachineConfig::dkipSched(SchedPolicy::OutOfOrder, 20,
                                  SchedPolicy::InOrder, 20)},
        {"OOO80-INO",
         MachineConfig::dkipSched(SchedPolicy::OutOfOrder, 80,
                                  SchedPolicy::InOrder, 20)},
        {"OOO80-OOO40",
         MachineConfig::dkipSched(SchedPolicy::OutOfOrder, 80,
                                  SchedPolicy::OutOfOrder, 40)},
    };
    RunConfig rc = RunConfig::sweep();

    for (auto suite :
         {std::pair{"Figure 11 (SpecINT-like)", intSuite()},
          std::pair{"Figure 12 (SpecFP-like)", fpSuite()}}) {
        std::vector<std::string> headers{"config"};
        for (uint64_t kb : l2_kb)
            headers.push_back(std::to_string(kb) + "KB");
        headers.push_back("max/min");
        Table table(headers);

        for (const auto &m : machines) {
            std::vector<std::string> row{m.label};
            double lo = 1e9, hi = 0.0;
            double cp_frac_small = 0.0, cp_frac_big = 0.0;
            for (uint64_t kb : l2_kb) {
                auto results = runSuite(
                    m.cfg, suite.second,
                    mem::MemConfig::withL2Size(kb * 1024), rc);
                double ipc = meanIpc(results);
                row.push_back(Table::num(ipc));
                lo = std::min(lo, ipc);
                hi = std::max(hi, ipc);
                if (kb == l2_kb.front())
                    cp_frac_small = 1.0 - meanMpFraction(results);
                if (kb == l2_kb.back())
                    cp_frac_big = 1.0 - meanMpFraction(results);
            }
            row.push_back(Table::num(hi / lo));
            table.addRow(row);
            if (m.cfg.kind == MachineKind::Dkip) {
                std::printf("  [%s] CP executes %.0f%% of commits at "
                            "%luKB, %.0f%% at %luKB\n",
                            m.label.c_str(), 100.0 * cp_frac_small,
                            (unsigned long)l2_kb.front(),
                            100.0 * cp_frac_big,
                            (unsigned long)l2_kb.back());
            }
        }
        std::printf("== %s ==\n%s\n", suite.first,
                    table.render().c_str());
    }

    std::printf("paper reference: R10-256 gains ~1.55x over the "
                "sweep; the most aggressive D-KIP only ~1.18x on FP; "
                "CP share rises 67%% -> 77%% (FP)\n");
    return 0;
}
