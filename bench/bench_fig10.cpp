/**
 * @file
 * Reproduces Figure 10 (and the section 4.3 integer discussion):
 * impact of the scheduling policy and queue sizes of the Cache
 * Processor (INO, OOO-20/40/60/80) and the Memory Processor (INO,
 * OOO-20, OOO-40) on SpecFP-like average IPC, plus the integer-side
 * CP sensitivity rows.
 *
 * Expected shape: an out-of-order CP is worth roughly 30% over an
 * in-order one; MP configuration matters little except for the most
 * aggressive CPs; integer codes care only about the CP.
 */

#include <cstdio>

#include "src/sim/sweep.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

struct CpSpec
{
    const char *label;
    core::SchedPolicy policy;
    size_t queue;
};

struct MpSpec
{
    const char *label;
    core::SchedPolicy policy;
    size_t queue;
};

} // anonymous namespace

int
main()
{
    const CpSpec cps[] = {
        {"INO", core::SchedPolicy::InOrder, 40},
        {"OOO-20", core::SchedPolicy::OutOfOrder, 20},
        {"OOO-40", core::SchedPolicy::OutOfOrder, 40},
        {"OOO-60", core::SchedPolicy::OutOfOrder, 60},
        {"OOO-80", core::SchedPolicy::OutOfOrder, 80},
    };
    const MpSpec mps[] = {
        {"MP INO", core::SchedPolicy::InOrder, 20},
        {"MP OOO-20", core::SchedPolicy::OutOfOrder, 20},
        {"MP OOO-40", core::SchedPolicy::OutOfOrder, 40},
    };
    RunConfig rc = RunConfig::sweep();

    for (auto suite :
         {std::pair{"Figure 10 (SpecFP-like)", fpSuite()},
          std::pair{"Section 4.3 (SpecINT-like)", intSuite()}}) {
        Table table({"CP config", mps[0].label, mps[1].label,
                     mps[2].label});
        double ino_ino = 0.0, best = 0.0;
        for (const auto &cp : cps) {
            std::vector<std::string> row{cp.label};
            for (const auto &mp : mps) {
                auto machine = MachineConfig::dkipSched(
                    cp.policy, cp.queue, mp.policy, mp.queue);
                double ipc =
                    meanIpc(runSuite(machine, suite.second,
                                     mem::MemConfig::mem400(), rc));
                row.push_back(Table::num(ipc));
                if (cp.policy == core::SchedPolicy::InOrder &&
                    mp.policy == core::SchedPolicy::InOrder) {
                    ino_ino = ipc;
                }
                if (ipc > best)
                    best = ipc;
            }
            table.addRow(row);
        }
        std::printf("== %s ==\n%s", suite.first,
                    table.render().c_str());
        std::printf("best / INO-INO speed-up: %.2fx\n\n",
                    ino_ino > 0 ? best / ino_ino : 0.0);
    }

    std::printf("paper reference: OOO CP worth ~29%% (INT) / ~32%% "
                "(FP); MP OOO-40 adds ~6.3%% at CP OOO-80; most "
                "aggressive FP config 2.54 vs 2.37 baseline\n");
    return 0;
}
