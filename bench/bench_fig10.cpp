/**
 * @file
 * Reproduces Figure 10 (and the section 4.3 integer discussion):
 * impact of the scheduling policy and queue sizes of the Cache
 * Processor (INO, OOO-20/40/60/80) and the Memory Processor (INO,
 * OOO-20, OOO-40) on SpecFP-like average IPC, plus the integer-side
 * CP sensitivity rows.
 *
 * Expected shape: an out-of-order CP is worth roughly 30% over an
 * in-order one; MP configuration matters little except for the most
 * aggressive CPs; integer codes care only about the CP.
 *
 * Each suite is dispatched as one SweepEngine::matrix over the 15
 * CP×MP machine variants, so the bench inherits the thread pool
 * (KILO_SWEEP_THREADS) and emits the standard JSONL rows on stderr
 * like the other figure benches.
 */

#include <cstdio>
#include <iostream>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

struct CpSpec
{
    const char *label;
    core::SchedPolicy policy;
    size_t queue;
};

struct MpSpec
{
    const char *label;
    core::SchedPolicy policy;
    size_t queue;
};

} // anonymous namespace

int
main()
{
    const CpSpec cps[] = {
        {"INO", core::SchedPolicy::InOrder, 40},
        {"OOO-20", core::SchedPolicy::OutOfOrder, 20},
        {"OOO-40", core::SchedPolicy::OutOfOrder, 40},
        {"OOO-60", core::SchedPolicy::OutOfOrder, 60},
        {"OOO-80", core::SchedPolicy::OutOfOrder, 80},
    };
    const MpSpec mps[] = {
        {"MP INO", core::SchedPolicy::InOrder, 20},
        {"MP OOO-20", core::SchedPolicy::OutOfOrder, 20},
        {"MP OOO-40", core::SchedPolicy::OutOfOrder, 40},
    };
    constexpr size_t NumMps = std::size(mps);
    RunConfig rc = RunConfig::sweep();

    // One machine per CP×MP point, CP-major — the machine axis of
    // the per-suite sweep matrix.
    std::vector<MachineConfig> machines;
    for (const auto &cp : cps)
        for (const auto &mp : mps)
            machines.push_back(MachineConfig::dkipSched(
                cp.policy, cp.queue, mp.policy, mp.queue));

    SweepEngine engine;
    for (auto suite :
         {std::pair{"Figure 10 (SpecFP-like)", fpSuite()},
          std::pair{"Section 4.3 (SpecINT-like)", intSuite()}}) {
        auto jobs = SweepEngine::matrix(machines, suite.second,
                                        {mem::MemConfig::mem400()},
                                        rc);
        auto results = engine.run(jobs);
        writeJsonRows(std::cerr, results);

        Table table({"CP config", mps[0].label, mps[1].label,
                     mps[2].label});
        const size_t B = suite.second.size();
        double ino_ino = 0.0, best = 0.0;
        for (size_t ci = 0; ci < std::size(cps); ++ci) {
            std::vector<std::string> row{cps[ci].label};
            for (size_t mi = 0; mi < NumMps; ++mi) {
                // matrix() is machine-major: machine (ci*NumMps+mi)
                // owns the B consecutive per-bench rows.
                size_t base = (ci * NumMps + mi) * B;
                std::vector<RunResult> cell(
                    results.begin() + long(base),
                    results.begin() + long(base + B));
                double ipc = meanIpc(cell);
                row.push_back(Table::num(ipc));
                if (cps[ci].policy == core::SchedPolicy::InOrder &&
                    mps[mi].policy == core::SchedPolicy::InOrder) {
                    ino_ino = ipc;
                }
                if (ipc > best)
                    best = ipc;
            }
            table.addRow(row);
        }
        std::printf("== %s ==\n%s", suite.first,
                    table.render().c_str());
        std::printf("best / INO-INO speed-up: %.2fx\n\n",
                    ino_ino > 0 ? best / ino_ino : 0.0);
    }

    std::printf("paper reference: OOO CP worth ~29%% (INT) / ~32%% "
                "(FP); MP OOO-40 adds ~6.3%% at CP OOO-80; most "
                "aggressive FP config 2.54 vs 2.37 baseline\n");
    return 0;
}
