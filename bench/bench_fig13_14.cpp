/**
 * @file
 * Reproduces Figures 13 and 14: the per-benchmark high-water marks of
 * LLIB occupancy — simultaneous instructions and simultaneous READY
 * registers (LLRF allocation) — for the integer LLIB on the
 * SpecINT-like suite and the FP LLIB on the SpecFP-like suite.
 *
 * Expected shape: registers track well below instructions (many
 * low-locality instructions carry no READY operand); only integer
 * members with long irregular load chains approach the 2048-entry
 * capacity.
 *
 * Each suite runs as one SweepEngine::matrixByName job list, so the
 * bench inherits the thread pool (KILO_SWEEP_THREADS) and emits the
 * standard JSONL rows on stderr like the other figure benches.
 */

#include <cstdio>
#include <iostream>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    RunConfig rc; // full-length runs for credible high-water marks

    SweepEngine engine;
    for (auto suite :
         {std::pair{"Figure 13 (integer LLIB, SpecINT-like)",
                    intSuite()},
          std::pair{"Figure 14 (FP LLIB, SpecFP-like)", fpSuite()}}) {
        bool fp_side =
            suite.second.size() == fpSuite().size() &&
            suite.second.front() == fpSuite().front();

        auto jobs = SweepEngine::matrixByName({"dkip"}, suite.second,
                                              {"mem-400"}, rc);
        auto results = engine.run(jobs);
        writeJsonRows(std::cerr, results);

        Table table({"bench", "max instructions", "max registers",
                     "regs/instrs"});
        for (size_t bi = 0; bi < suite.second.size(); ++bi) {
            const RunResult &res = results[bi];
            uint64_t insts = fp_side ? res.stats.maxLlibInstrsFp
                                     : res.stats.maxLlibInstrsInt;
            uint64_t regs = fp_side ? res.stats.maxLlibRegsFp
                                    : res.stats.maxLlibRegsInt;
            table.addRow({suite.second[bi], std::to_string(insts),
                          std::to_string(regs),
                          insts ? sim::Table::num(double(regs) /
                                                  double(insts))
                                : "-"});
        }
        std::printf("== %s ==\n%s\n", suite.first,
                    table.render().c_str());
    }

    std::printf("paper reference: register high-water marks sit well "
                "below instruction marks; a ~1000-entry LLRF would "
                "have sufficed for all benchmarks\n");
    return 0;
}
