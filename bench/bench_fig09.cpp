/**
 * @file
 * Reproduces Figure 9: IPC of the D-KIP against the baselines —
 * R10-64 (a MIPS R10000-class core), R10-256 (a "futuristic" scaled
 * conventional core), KILO-1024 (pseudo-ROB + out-of-order SLIQ) and
 * D-KIP-2048 — on both suites, plus the R10-768 reference point of
 * section 4.2.
 *
 * Expected shape: on FP the two kilo-window machines dramatically
 * beat both baselines, with the D-KIP at least matching the KILO
 * despite its FIFO buffers; on INT the gains are modest and the KILO
 * edges out the D-KIP on pointer-chasing members.
 */

#include <cstdio>

#include "src/sim/sweep.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    const std::vector<MachineConfig> machines{
        MachineConfig::r10_64(),   MachineConfig::r10_256(),
        MachineConfig::r10_768(),  MachineConfig::kilo1024(),
        MachineConfig::dkip2048(),
    };
    RunConfig rc; // full 20k + 100k runs

    struct SuiteSpec
    {
        const char *title;
        std::vector<std::string> names;
    };
    const SuiteSpec suites[] = {
        {"Figure 9 (SpecINT-like)", intSuite()},
        {"Figure 9 (SpecFP-like)", fpSuite()},
    };

    for (const auto &suite : suites) {
        std::vector<std::string> headers{"bench"};
        for (const auto &m : machines)
            headers.push_back(m.name);
        Table table(headers);

        std::vector<double> sums(machines.size(), 0.0);
        for (const auto &bench : suite.names) {
            std::vector<std::string> row{bench};
            for (size_t m = 0; m < machines.size(); ++m) {
                auto res = Simulator::run(machines[m], bench,
                                          mem::MemConfig::mem400(),
                                          rc);
                sums[m] += res.ipc;
                row.push_back(Table::num(res.ipc));
            }
            table.addRow(row);
        }
        std::vector<std::string> mean{"AVG"};
        for (double s : sums)
            mean.push_back(Table::num(s / double(suite.names.size())));
        table.addRow(mean);

        std::printf("== %s ==\n%s\n", suite.title,
                    table.render().c_str());
    }

    std::printf("paper reference (avg IPC): INT 1.19/1.32/-/1.38/1.33"
                "  FP 1.26/1.71/~2.3/2.23/2.37\n");
    return 0;
}
