/**
 * @file
 * Reproduces Figure 9: IPC of the D-KIP against the baselines —
 * R10-64 (a MIPS R10000-class core), R10-256 (a "futuristic" scaled
 * conventional core), KILO-1024 (pseudo-ROB + out-of-order SLIQ) and
 * D-KIP-2048 — on both suites, plus the R10-768 reference point of
 * section 4.2.
 *
 * Expected shape: on FP the two kilo-window machines dramatically
 * beat both baselines, with the D-KIP at least matching the KILO
 * despite its FIFO buffers; on INT the gains are modest and the KILO
 * edges out the D-KIP on pointer-chasing members.
 *
 * Each suite is dispatched as one SweepEngine matrix built by name
 * (SweepEngine::matrixByName over MachineConfig::byName), so the
 * bench inherits the thread pool (KILO_SWEEP_THREADS) and emits the
 * standard JSONL rows on stderr like bench_fig03.
 */

#include <cstdio>
#include <iostream>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    const std::vector<std::string> machines{"r10-64", "r10-256",
                                            "r10-768", "kilo", "dkip"};
    RunConfig rc; // full 20k + 100k runs

    struct SuiteSpec
    {
        const char *title;
        std::vector<std::string> names;
    };
    const SuiteSpec suites[] = {
        {"Figure 9 (SpecINT-like)", intSuite()},
        {"Figure 9 (SpecFP-like)", fpSuite()},
    };

    SweepEngine engine;
    for (const auto &suite : suites) {
        auto jobs = SweepEngine::matrixByName(machines, suite.names,
                                              {"mem-400"}, rc);
        auto results = engine.run(jobs);
        writeJsonRows(std::cerr, results);

        std::vector<std::string> headers{"bench"};
        for (const auto &m : machines)
            headers.push_back(MachineConfig::byName(m).name);
        Table table(headers);

        // matrixByName() is machine-major: results[mi * B + bi].
        const size_t B = suite.names.size();
        std::vector<double> sums(machines.size(), 0.0);
        for (size_t bi = 0; bi < B; ++bi) {
            std::vector<std::string> row{suite.names[bi]};
            for (size_t mi = 0; mi < machines.size(); ++mi) {
                double ipc = results[mi * B + bi].ipc;
                sums[mi] += ipc;
                row.push_back(Table::num(ipc));
            }
            table.addRow(row);
        }
        std::vector<std::string> mean{"AVG"};
        for (double s : sums)
            mean.push_back(Table::num(s / double(B)));
        table.addRow(mean);

        std::printf("== %s ==\n%s\n", suite.title,
                    table.render().c_str());
    }

    std::printf("paper reference (avg IPC): INT 1.19/1.32/-/1.38/1.33"
                "  FP 1.26/1.71/~2.3/2.23/2.37\n");
    return 0;
}
