/**
 * @file
 * Reproduces Figure 3: the distribution of the decode-to-issue
 * distance (Issue Latency) of correct-path instructions on an
 * effectively unlimited out-of-order core with 400-cycle memory,
 * over the SpecFP-like suite.
 *
 * Expected shape (paper section 2.1): ~70% of instructions issue
 * within ~300 cycles of decode (high execution locality); a
 * secondary peak sits at the memory latency (~400, one miss) and a
 * small one at twice that (~800, a chain of two misses).
 *
 * The suite is dispatched as a SweepEngine matrix, so this bench
 * inherits the thread pool (KILO_SWEEP_THREADS) and emits the
 * standard JSONL rows on stderr; the RunResult rows carry the full
 * per-run issue-latency histogram the figure is built from.
 */

#include <cstdio>
#include <iostream>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/util/histogram.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    RunConfig rc;
    rc.warmupInsts = 10000;
    rc.measureInsts = 60000;

    SweepEngine engine;
    auto jobs = SweepEngine::matrix({MachineConfig::windowLimit(8192)},
                                    fpSuite(),
                                    {mem::MemConfig::mem400()}, rc);
    auto results = engine.run(jobs);

    Histogram combined(25, 80); // 25-cycle buckets to 2000
    for (const auto &r : results) {
        const auto &h = r.stats.issueLatency;
        for (size_t b = 0; b < h.numBuckets(); ++b) {
            for (uint64_t n = 0; n < h.bucketCount(b); ++n)
                combined.sample(b * h.bucketWidth());
        }
        std::printf("%-10s mean issue latency %7.1f  %%<300 %5.1f\n",
                    r.workload.c_str(), h.mean(),
                    100.0 * h.fractionBelow(300));
    }
    writeJsonRows(std::cerr, results);

    std::printf("\n== Figure 3: decode->issue distance, SpecFP-like, "
                "MEM-400, unlimited core ==\n");
    std::printf("%s\n", combined.render(44).c_str());

    double below300 = combined.fractionBelow(300);
    double peak400 = combined.fractionBelow(600) - below300;
    double peak800 =
        combined.fractionBelow(1000) - combined.fractionBelow(600);
    std::printf("fraction issuing < 300 cycles : %5.1f%%  "
                "(paper: ~70%%)\n", 100.0 * below300);
    std::printf("fraction in 300-600 (1 miss)  : %5.1f%%  "
                "(paper: ~11-12%%)\n", 100.0 * peak400);
    std::printf("fraction in 600-1000 (2 miss) : %5.1f%%  "
                "(paper: ~4%%)\n", 100.0 * peak800);
    return 0;
}
