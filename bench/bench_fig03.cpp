/**
 * @file
 * Reproduces Figure 3: the distribution of the decode-to-issue
 * distance (Issue Latency) of correct-path instructions on an
 * effectively unlimited out-of-order core with 400-cycle memory,
 * over the SpecFP-like suite.
 *
 * Expected shape (paper section 2.1): ~70% of instructions issue
 * within ~300 cycles of decode (high execution locality); a
 * secondary peak sits at the memory latency (~400, one miss) and a
 * small one at twice that (~800, a chain of two misses).
 */

#include <cstdio>

#include "src/sim/simulator.hh"
#include "src/sim/sweep.hh"
#include "src/wload/synthetic.hh"
#include "src/util/histogram.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    RunConfig rc;
    rc.warmupInsts = 10000;
    rc.measureInsts = 60000;

    Histogram combined(25, 80); // 25-cycle buckets to 2000

    auto machine = MachineConfig::windowLimit(8192);
    for (const auto &name : fpSuite()) {
        auto wl = wload::makeWorkload(name);
        auto core = Simulator::makeCore(machine, *wl,
                                        mem::MemConfig::mem400());
        for (const auto &region : wl->regions())
            core->memory().prewarm(region.base, region.bytes);
        core->run(rc.warmupInsts);
        core->resetStats();
        core->run(rc.measureInsts);

        const auto &h = core->stats().issueLatency;
        for (size_t b = 0; b < h.numBuckets(); ++b) {
            for (uint64_t n = 0; n < h.bucketCount(b); ++n)
                combined.sample(b * h.bucketWidth());
        }
        std::printf("%-10s mean issue latency %7.1f  %%<300 %5.1f\n",
                    name.c_str(), h.mean(),
                    100.0 * h.fractionBelow(300));
    }

    std::printf("\n== Figure 3: decode->issue distance, SpecFP-like, "
                "MEM-400, unlimited core ==\n");
    std::printf("%s\n", combined.render(44).c_str());

    double below300 = combined.fractionBelow(300);
    double peak400 = combined.fractionBelow(600) - below300;
    double peak800 =
        combined.fractionBelow(1000) - combined.fractionBelow(600);
    std::printf("fraction issuing < 300 cycles : %5.1f%%  "
                "(paper: ~70%%)\n", 100.0 * below300);
    std::printf("fraction in 300-600 (1 miss)  : %5.1f%%  "
                "(paper: ~11-12%%)\n", 100.0 * peak400);
    std::printf("fraction in 600-1000 (2 miss) : %5.1f%%  "
                "(paper: ~4%%)\n", 100.0 * peak800);
    return 0;
}
