/**
 * @file
 * Ablation studies on the D-KIP design choices DESIGN.md calls out:
 * the Aging-ROB timer, LLIB capacity, LLRF banking, checkpoint-stack
 * depth, the branch predictor family, the MP reservation queue, and
 * the finite-MSHR structural hazard (MemConfig::mshrStall). Each
 * sweep runs a small representative workload set (one streaming FP,
 * one chasing INT, one branchy INT).
 *
 * Every sweep dispatches as one SweepEngine::matrix (inheriting
 * KILO_SWEEP_THREADS) and emits the standard JSONL rows on stderr
 * like the figure benches.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "src/sim/sweep_engine.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

const std::vector<std::string> kBenches{"swim", "vpr", "gcc"};

SweepEngine &
engine()
{
    static SweepEngine e;
    return e;
}

/** Render one machine-major result matrix as a points×benches table. */
void
render(const char *title, const char *axis,
       const std::vector<std::string> &points,
       const std::vector<RunResult> &results)
{
    writeJsonRows(std::cerr, results);
    std::vector<std::string> headers{axis};
    for (const auto &b : kBenches)
        headers.push_back(b);
    Table table(headers);
    for (size_t i = 0; i < points.size(); ++i) {
        std::vector<std::string> row{points[i]};
        for (size_t b = 0; b < kBenches.size(); ++b)
            row.push_back(
                Table::num(results[i * kBenches.size() + b].ipc));
        table.addRow(row);
    }
    std::printf("== %s ==\n%s\n", title, table.render().c_str());
}

/** Sweep a machine-configuration axis over the bench set. */
void
sweep(const char *title, const char *axis,
      const std::vector<std::string> &points,
      const std::function<MachineConfig(size_t)> &make)
{
    std::vector<MachineConfig> machines;
    for (size_t i = 0; i < points.size(); ++i)
        machines.push_back(make(i));
    auto jobs = SweepEngine::matrix(machines, kBenches,
                                    {mem::MemConfig::mem400()},
                                    RunConfig::sweep());
    render(title, axis, points, engine().run(jobs));
}

/** Sweep a memory-configuration axis (fixed D-KIP machine). */
void
sweepMem(const char *title, const char *axis,
         const std::vector<std::string> &points,
         const std::function<mem::MemConfig(size_t)> &make)
{
    // matrixMemMajor puts the memory axis outermost, so one matrix
    // (and one thread-pool dispatch) produces the same point-major
    // result layout render() expects.
    std::vector<mem::MemConfig> mems;
    for (size_t i = 0; i < points.size(); ++i)
        mems.push_back(make(i));
    auto jobs = SweepEngine::matrixMemMajor(
        {MachineConfig::dkip2048()}, kBenches, mems,
        RunConfig::sweep());
    render(title, axis, points, engine().run(jobs));
}

} // anonymous namespace

int
main()
{
    sweep("Aging-ROB timer (cycles before Analyze)", "timer",
          {"8", "16", "32", "64"}, [](size_t i) {
              int timers[] = {8, 16, 32, 64};
              auto m = MachineConfig::dkip2048();
              m.dkip.robTimer = timers[i];
              m.dkip.cp.robSize = size_t(timers[i]) * 4;
              return m;
          });

    sweep("LLIB capacity (entries per buffer)", "entries",
          {"256", "512", "1024", "2048"}, [](size_t i) {
              size_t caps[] = {256, 512, 1024, 2048};
              auto m = MachineConfig::dkip2048();
              m.dkip.llibCapacity = caps[i];
              return m;
          });

    sweep("LLRF banks (constant 2048 registers)", "banks",
          {"2", "4", "8", "16"}, [](size_t i) {
              int banks[] = {2, 4, 8, 16};
              auto m = MachineConfig::dkip2048();
              m.dkip.llrfBanks = banks[i];
              m.dkip.llrfRegsPerBank = 2048 / banks[i];
              return m;
          });

    sweep("Checkpoint stack depth", "entries", {"2", "4", "8", "16",
                                                "32"},
          [](size_t i) {
              size_t caps[] = {2, 4, 8, 16, 32};
              auto m = MachineConfig::dkip2048();
              m.dkip.checkpointCapacity = caps[i];
              return m;
          });

    sweep("Branch predictor (Cache Processor)", "kind",
          {"perceptron", "gshare", "bimodal", "always-taken",
           "perfect"},
          [](size_t i) {
              pred::BpKind kinds[] = {
                  pred::BpKind::Perceptron, pred::BpKind::Gshare,
                  pred::BpKind::Bimodal, pred::BpKind::AlwaysTaken,
                  pred::BpKind::Perfect};
              auto m = MachineConfig::dkip2048();
              m.dkip.cp.predictor = kinds[i];
              return m;
          });

    sweep("MP reservation-queue size (in-order)", "entries",
          {"8", "20", "40", "80"}, [](size_t i) {
              size_t sizes[] = {8, 20, 40, 80};
              auto m = MachineConfig::dkip2048();
              m.dkip.mpIqSize = sizes[i];
              return m;
          });

    // Finite MSHRs as a structural hazard (MemConfig::mshrStall): at
    // a generous capacity the stall never fires and IPC matches the
    // displacement model; shrinking the file back-pressures the MP's
    // miss streams long before it hurts the branchy INT members.
    sweepMem("MSHR structural hazard (mshrStall back-pressure)",
             "mshrs",
             {"displace-4096", "stall-4096", "stall-64", "stall-32",
              "stall-16", "stall-8"},
             [](size_t i) {
                 uint32_t caps[] = {4096, 4096, 64, 32, 16, 8};
                 auto m = mem::MemConfig::mem400();
                 m.numMshrs = caps[i];
                 m.mshrStall = i != 0;
                 return m;
             });

    return 0;
}
