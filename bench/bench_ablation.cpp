/**
 * @file
 * Ablation studies on the D-KIP design choices DESIGN.md calls out:
 * the Aging-ROB timer, LLIB capacity, LLRF banking, checkpoint-stack
 * depth and the branch predictor family. Each sweep runs a small
 * representative workload set (one streaming FP, one chasing INT,
 * one branchy INT).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "src/sim/simulator.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

namespace
{

const std::vector<std::string> kBenches{"swim", "vpr", "gcc"};

void
sweep(const char *title, const char *axis,
      const std::vector<std::string> &points,
      const std::function<MachineConfig(size_t)> &make)
{
    std::vector<std::string> headers{axis};
    for (const auto &b : kBenches)
        headers.push_back(b);
    Table table(headers);

    for (size_t i = 0; i < points.size(); ++i) {
        std::vector<std::string> row{points[i]};
        MachineConfig cfg = make(i);
        for (const auto &b : kBenches) {
            auto res = Simulator::run(cfg, b, mem::MemConfig::mem400(),
                                      RunConfig::sweep());
            row.push_back(Table::num(res.ipc));
        }
        table.addRow(row);
    }
    std::printf("== %s ==\n%s\n", title, table.render().c_str());
}

} // anonymous namespace

int
main()
{
    sweep("Aging-ROB timer (cycles before Analyze)", "timer",
          {"8", "16", "32", "64"}, [](size_t i) {
              int timers[] = {8, 16, 32, 64};
              auto m = MachineConfig::dkip2048();
              m.dkip.robTimer = timers[i];
              m.dkip.cp.robSize = size_t(timers[i]) * 4;
              return m;
          });

    sweep("LLIB capacity (entries per buffer)", "entries",
          {"256", "512", "1024", "2048"}, [](size_t i) {
              size_t caps[] = {256, 512, 1024, 2048};
              auto m = MachineConfig::dkip2048();
              m.dkip.llibCapacity = caps[i];
              return m;
          });

    sweep("LLRF banks (constant 2048 registers)", "banks",
          {"2", "4", "8", "16"}, [](size_t i) {
              int banks[] = {2, 4, 8, 16};
              auto m = MachineConfig::dkip2048();
              m.dkip.llrfBanks = banks[i];
              m.dkip.llrfRegsPerBank = 2048 / banks[i];
              return m;
          });

    sweep("Checkpoint stack depth", "entries", {"2", "4", "8", "16",
                                                "32"},
          [](size_t i) {
              size_t caps[] = {2, 4, 8, 16, 32};
              auto m = MachineConfig::dkip2048();
              m.dkip.checkpointCapacity = caps[i];
              return m;
          });

    sweep("Branch predictor (Cache Processor)", "kind",
          {"perceptron", "gshare", "bimodal", "always-taken",
           "perfect"},
          [](size_t i) {
              pred::BpKind kinds[] = {
                  pred::BpKind::Perceptron, pred::BpKind::Gshare,
                  pred::BpKind::Bimodal, pred::BpKind::AlwaysTaken,
                  pred::BpKind::Perfect};
              auto m = MachineConfig::dkip2048();
              m.dkip.cp.predictor = kinds[i];
              return m;
          });

    sweep("MP reservation-queue size (in-order)", "entries",
          {"8", "20", "40", "80"}, [](size_t i) {
              size_t sizes[] = {8, 20, 40, 80};
              auto m = MachineConfig::dkip2048();
              m.dkip.mpIqSize = sizes[i];
              return m;
          });

    return 0;
}
