/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * cache/hierarchy lookups, perceptron prediction, arena recycling,
 * issue-queue operations, LLIB/LLRF traffic, workload generation,
 * whole-core simulation throughput (simulated instructions per
 * second) and suite-level sweep throughput.
 *
 * Run with --benchmark_format=json for the machine-readable rows the
 * CI harness archives.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/inst_arena.hh"
#include "src/core/issue_queue.hh"
#include "src/core/ooo_core.hh"
#include "src/dkip/dkip_core.hh"
#include "src/dkip/llib.hh"
#include "src/dkip/llrf.hh"
#include "src/mem/hierarchy.hh"
#include "src/pred/perceptron.hh"
#include "src/sim/simulator.hh"
#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/trace/capture.hh"
#include "src/trace/trace_reader.hh"
#include "src/util/rng.hh"
#include "src/wload/profile.hh"
#include "src/wload/synthetic.hh"
#include "src/wload/trace_window.hh"

using namespace kilo;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheGeometry g;
    g.sizeBytes = 512 * 1024;
    g.assoc = 8;
    mem::SetAssocCache cache(g);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.range(4 * 1024 * 1024)));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyAccess(benchmark::State &state)
{
    mem::MemoryHierarchy mem(mem::MemConfig::mem400());
    Rng rng(2);
    uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.access(rng.range(8 * 1024 * 1024), false, now));
        now += 3;
    }
}
BENCHMARK(BM_HierarchyAccess);

/** Streaming-miss traffic: every access touches a new line, the
 *  pattern that made the old unordered_map fill tracker leak one
 *  entry per line and rehash under growth. The MSHR file keeps this
 *  O(ways) probes over a fixed array. */
void
BM_MemHierarchyStream(benchmark::State &state)
{
    mem::MemoryHierarchy mem(mem::MemConfig::mem400());
    uint64_t line = 0;
    uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.access(line * 64, false, now));
        ++line;
        now += 2;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MemHierarchyStream);

void
BM_PerceptronLookup(benchmark::State &state)
{
    pred::PerceptronPredictor bp;
    uint64_t pc = 0x1000, hist = 0xdeadbeef;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.lookup(pc, hist));
        pc += 4;
        hist = (hist << 1) | 1;
    }
}
BENCHMARK(BM_PerceptronLookup);

void
BM_PerceptronTrain(benchmark::State &state)
{
    pred::PerceptronPredictor bp;
    uint64_t pc = 0x1000, hist = 0;
    bool taken = false;
    for (auto _ : state) {
        bp.train(pc, hist, taken);
        pc += 4;
        hist = (hist << 1) | (taken ? 1 : 0);
        taken = !taken;
    }
}
BENCHMARK(BM_PerceptronTrain);

void
BM_InstArenaAllocFree(benchmark::State &state)
{
    core::InstArena arena;
    uint64_t seq = 0;
    for (auto _ : state) {
        core::InstRef ref = arena.alloc();
        core::DynInst &inst = arena.get(ref);
        inst.op = isa::makeAlu(1, 2, 3);
        inst.seq = ++seq;
        benchmark::DoNotOptimize(inst.seq);
        arena.free(ref);
    }
}
BENCHMARK(BM_InstArenaAllocFree);

void
BM_IssueQueueInsertPop(benchmark::State &state)
{
    core::InstArena arena;
    core::IssueQueue q("bench", 4096, core::SchedPolicy::OutOfOrder,
                       arena);
    q.assignId(0);
    uint64_t seq = 0;
    for (auto _ : state) {
        core::InstRef ref = arena.alloc();
        core::DynInst &inst = arena.get(ref);
        inst.op = isa::makeAlu(1, 2, 3);
        inst.seq = ++seq;
        inst.readyFlag = true;
        q.insert(ref);
        core::InstRef got = q.popReady(0);
        arena.get(got).issued = true;
        q.removeIssued(got);
        arena.free(got);
    }
}
BENCHMARK(BM_IssueQueueInsertPop);

void
BM_LlibPushPop(benchmark::State &state)
{
    core::InstArena arena;
    dkip::Llib llib("bench", 2048, arena);
    uint64_t seq = 0;
    for (auto _ : state) {
        core::InstRef ref = arena.alloc();
        core::DynInst &inst = arena.get(ref);
        inst.op = isa::makeAlu(1, 2, 3);
        inst.seq = ++seq;
        llib.push(ref);
        benchmark::DoNotOptimize(llib.popFront());
        arena.free(ref);
    }
}
BENCHMARK(BM_LlibPushPop);

void
BM_LlrfAllocRelease(benchmark::State &state)
{
    core::InstArena arena;
    dkip::Llrf llrf;
    core::InstRef ref = arena.alloc();
    core::DynInst &inst = arena.get(ref);
    for (auto _ : state) {
        llrf.tryAlloc(inst);
        llrf.release(inst);
        llrf.beginCycle();
    }
}
BENCHMARK(BM_LlrfAllocRelease);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto wl = wload::makeWorkload("swim");
    for (auto _ : state)
        benchmark::DoNotOptimize(wl->next());
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_WorkloadGeneration);

namespace
{

/** Shared body of the replay benchmarks: record 256k swim ops once,
 *  then pull through the batched nextBlock path with @p mode. */
void
traceReplayBody(benchmark::State &state, trace::ReadMode mode)
{
    const char *path = "bench_trace_replay.ktrc";
    {
        // Record once: 256k swim ops, written via the block API.
        wload::SyntheticWorkload inner(
            wload::profileByName("swim"));
        trace::CapturingWorkload capture(inner, path,
                                         inner.profile().seed);
        isa::MicroOp buf[256];
        for (int i = 0; i < 1024; ++i)
            capture.nextBlock(buf, 256);
        capture.finish();
    }
    trace::TraceWorkload replay(path, mode);
    isa::MicroOp buf[64];
    for (auto _ : state)
        benchmark::DoNotOptimize(replay.nextBlock(buf, 64));
    state.SetItemsProcessed(int64_t(state.iterations()) * 64);
    std::remove(path);
}

} // anonymous namespace

/** Trace replay throughput (micro-ops/s) through the batched
 *  nextBlock path in the default (mmap, zero-copy) mode; the
 *  acceptance bars are >= synthetic generation
 *  (BM_WorkloadGeneration items/s) and >= the streaming backend
 *  (BM_TraceReplayStream). */
void
BM_TraceReplay(benchmark::State &state)
{
    traceReplayBody(state, trace::ReadMode::Auto);
}
BENCHMARK(BM_TraceReplay);

/** Same replay through the streaming (fread + copy) backend — the
 *  A/B partner that keeps the mmap path honest. */
void
BM_TraceReplayStream(benchmark::State &state)
{
    traceReplayBody(state, trace::ReadMode::Streaming);
}
BENCHMARK(BM_TraceReplayStream);

/** Steady-state front-end pull: a TraceWindow walked sequentially,
 *  exercising the batched refill (one virtual call per RefillBatch
 *  micro-ops instead of one per op). */
void
BM_FetchBatched(benchmark::State &state)
{
    auto wl = wload::makeWorkload("swim");
    wload::TraceWindow window(*wl);
    uint64_t seq = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(window.op(seq));
        ++seq;
        if ((seq & 1023) == 0)
            window.release(seq);
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_FetchBatched);

void
BM_OooCoreSimThroughput(benchmark::State &state)
{
    auto wl = wload::makeWorkload("gzip");
    core::CoreParams params;
    core::OooCore core(params, *wl, mem::MemConfig::mem400());
    for (auto _ : state)
        core.run(1000);
    state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_OooCoreSimThroughput)->Unit(benchmark::kMillisecond);

void
BM_DkipCoreSimThroughput(benchmark::State &state)
{
    auto wl = wload::makeWorkload("swim");
    dkip::DkipCore core(dkip::DkipParams::dkip2048(), *wl,
                        mem::MemConfig::mem400());
    for (auto _ : state)
        core.run(1000);
    state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_DkipCoreSimThroughput)->Unit(benchmark::kMillisecond);

/** The acceptance-gate run: a fresh DkipCore simulating the 100k
 *  instructions a standard measured region commits. */
void
BM_DkipCore100kRun(benchmark::State &state)
{
    for (auto _ : state) {
        auto res = sim::Simulator::run(
            sim::MachineConfig::dkip2048(), "swim",
            mem::MemConfig::mem400(), sim::RunConfig());
        benchmark::DoNotOptimize(res.ipc);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 120000);
}
BENCHMARK(BM_DkipCore100kRun)->Unit(benchmark::kMillisecond);

/** Suite sweep through the SweepEngine at an explicit thread count
 *  (Arg). Compare Arg=1 against Arg=4 for the parallel speedup. */
void
BM_SweepEngineSuite(benchmark::State &state)
{
    sim::SweepEngine engine(unsigned(state.range(0)));
    auto suite = sim::fpSuite();
    for (auto _ : state) {
        auto results = engine.runSuite(
            sim::MachineConfig::dkip2048(), suite,
            mem::MemConfig::mem400(), sim::RunConfig::sweep());
        benchmark::DoNotOptimize(results.front().ipc);
    }
}
BENCHMARK(BM_SweepEngineSuite)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
