/**
 * @file
 * Reproduces Figures 1 and 2 (and consumes Table 1): average IPC of
 * idealised ROB-limited out-of-order cores as the instruction window
 * scales from 32 to 4096 entries, under the six memory subsystems of
 * Table 1, for the SpecINT-like and SpecFP-like suites.
 *
 * Expected shape (paper section 2): the FP suite recovers the
 * perfect-L1 IPC at multi-thousand-entry windows even for MEM-1000;
 * the INT suite flattens early because pointer chasing and
 * mispredictions that depend on uncached data stay on the critical
 * path.
 *
 * Each suite is dispatched as one SweepEngine matrix (window-limited
 * machines x suite x Table-1 memories), so the bench inherits the
 * thread pool (KILO_SWEEP_THREADS) and emits the standard JSONL rows
 * on stderr like bench_fig03.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/sim/sweep.hh"
#include "src/sim/sweep_engine.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    const std::vector<size_t> windows{32, 48, 64, 128, 256, 512,
                                      1024, 2048, 4096};
    const std::vector<mem::MemConfig> mems{
        mem::MemConfig::l1Only(),     mem::MemConfig::l2Perfect11(),
        mem::MemConfig::l2Perfect21(), mem::MemConfig::mem100(),
        mem::MemConfig::mem400(),     mem::MemConfig::mem1000(),
    };

    std::vector<MachineConfig> machines;
    for (size_t w : windows)
        machines.push_back(MachineConfig::windowLimit(w));

    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 20000;

    std::printf("Table 1 memory configurations: ");
    for (const auto &m : mems)
        std::printf("%s ", m.name.c_str());
    std::printf("\n\n");

    struct SuiteSpec
    {
        const char *title;
        std::vector<std::string> names;
    };
    const SuiteSpec suites[] = {
        {"Figure 1: SpecINT-like, avg IPC vs window", intSuite()},
        {"Figure 2: SpecFP-like, avg IPC vs window", fpSuite()},
    };

    SweepEngine engine;
    for (const auto &suite : suites) {
        auto jobs =
            SweepEngine::matrix(machines, suite.names, mems, rc);
        auto results = engine.run(jobs);
        writeJsonRows(std::cerr, results);

        std::vector<std::string> headers{"window"};
        for (const auto &m : mems)
            headers.push_back(m.name);
        Table table(headers);

        // matrix() is machine-major, then workload, then memory:
        // jobs[(wi * B + bi) * M + mi].
        const size_t B = suite.names.size();
        const size_t M = mems.size();
        for (size_t wi = 0; wi < windows.size(); ++wi) {
            std::vector<std::string> row{std::to_string(windows[wi])};
            for (size_t mi = 0; mi < M; ++mi) {
                double sum = 0.0;
                for (size_t bi = 0; bi < B; ++bi)
                    sum += results[(wi * B + bi) * M + mi].ipc;
                row.push_back(Table::num(sum / double(B)));
            }
            table.addRow(row);
        }
        std::printf("== %s ==\n%s\n", suite.title,
                    table.render().c_str());
    }
    return 0;
}
