/**
 * @file
 * Reproduces Figures 1 and 2 (and consumes Table 1): average IPC of
 * idealised ROB-limited out-of-order cores as the instruction window
 * scales from 32 to 4096 entries, under the six memory subsystems of
 * Table 1, for the SpecINT-like and SpecFP-like suites.
 *
 * Expected shape (paper section 2): the FP suite recovers the
 * perfect-L1 IPC at multi-thousand-entry windows even for MEM-1000;
 * the INT suite flattens early because pointer chasing and
 * mispredictions that depend on uncached data stay on the critical
 * path.
 */

#include <cstdio>
#include <vector>

#include "src/sim/sweep.hh"
#include "src/sim/table.hh"

using namespace kilo;
using namespace kilo::sim;

int
main()
{
    const std::vector<size_t> windows{32, 48, 64, 128, 256, 512,
                                      1024, 2048, 4096};
    const std::vector<mem::MemConfig> mems{
        mem::MemConfig::l1Only(),     mem::MemConfig::l2Perfect11(),
        mem::MemConfig::l2Perfect21(), mem::MemConfig::mem100(),
        mem::MemConfig::mem400(),     mem::MemConfig::mem1000(),
    };

    RunConfig rc;
    rc.warmupInsts = 5000;
    rc.measureInsts = 20000;

    std::printf("Table 1 memory configurations: ");
    for (const auto &m : mems)
        std::printf("%s ", m.name.c_str());
    std::printf("\n\n");

    struct SuiteSpec
    {
        const char *title;
        std::vector<std::string> names;
    };
    const SuiteSpec suites[] = {
        {"Figure 1: SpecINT-like, avg IPC vs window", intSuite()},
        {"Figure 2: SpecFP-like, avg IPC vs window", fpSuite()},
    };

    for (const auto &suite : suites) {
        std::vector<std::string> headers{"window"};
        for (const auto &m : mems)
            headers.push_back(m.name);
        Table table(headers);

        for (size_t w : windows) {
            std::vector<std::string> row{std::to_string(w)};
            for (const auto &m : mems) {
                auto results = runSuite(MachineConfig::windowLimit(w),
                                        suite.names, m, rc);
                row.push_back(Table::num(meanIpc(results)));
            }
            table.addRow(row);
        }
        std::printf("== %s ==\n%s\n", suite.title,
                    table.render().c_str());
    }
    return 0;
}
