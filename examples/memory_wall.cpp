/**
 * @file
 * Mini memory-wall study (the paper's section 2, Figures 1-2, in
 * miniature): how the instruction window interacts with the memory
 * subsystem for one benchmark, across the Table 1 configurations.
 *
 *     ./memory_wall [benchmark]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/simulator.hh"
#include "src/sim/table.hh"

using namespace kilo;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "swim";
    sim::RunConfig rc = sim::RunConfig::sweep();

    const std::vector<mem::MemConfig> mems{
        mem::MemConfig::l1Only(), mem::MemConfig::l2Perfect11(),
        mem::MemConfig::mem100(), mem::MemConfig::mem400(),
        mem::MemConfig::mem1000()};
    const std::vector<size_t> windows{32, 64, 256, 1024, 4096};

    std::vector<std::string> headers{"window"};
    for (const auto &m : mems)
        headers.push_back(m.name);
    sim::Table table(headers);

    for (size_t w : windows) {
        std::vector<std::string> row{std::to_string(w)};
        for (const auto &m : mems) {
            auto res = sim::Simulator::run(
                sim::MachineConfig::windowLimit(w), bench, m, rc);
            row.push_back(sim::Table::num(res.ipc));
        }
        table.addRow(row);
    }

    std::printf("== %s: IPC vs window size vs memory subsystem ==\n%s",
                bench.c_str(), table.render().c_str());
    std::printf("\nA kilo-entry window recovers the memory-wall loss "
                "when misses are independent;\nthe D-KIP provides "
                "that window with small structures (see "
                "dkip_vs_baselines).\n");
    return 0;
}
