/**
 * @file
 * Shows how to drive the simulator with your own workload: either a
 * custom WorkloadProfile (the parameterised generator), a hand-built
 * Workload subclass emitting explicit micro-ops, or a recorded
 * binary trace.
 *
 * Modes:
 *   custom_workload                      demo (profile + subclass)
 *   custom_workload --record FILE [NAME] capture preset NAME (default
 *                                        swim) to FILE while running
 *                                        it live; prints the JSONL row
 *   custom_workload --replay FILE        replay FILE on the same
 *                                        machine; prints the JSONL row
 *
 * A --record row and its --replay row are byte-identical — that
 * equality is checked in CI against a golden trace.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "src/sim/simulator.hh"
#include "src/sim/sweep_engine.hh"
#include "src/trace/capture.hh"
#include "src/trace/trace_reader.hh"
#include "src/wload/synthetic.hh"

using namespace kilo;

namespace
{

/** A hand-rolled workload: a saxpy-like kernel with one hot miss. */
class SaxpyWorkload : public wload::Workload
{
  public:
    isa::MicroOp
    next() override
    {
        // y[i] = a * x[i] + y[i], streaming over 16MB arrays.
        isa::MicroOp op;
        switch (phase++) {
          case 0:
            op = isa::makeAlu(4, 4, isa::NoReg, 0x100); // i++
            break;
          case 1:
            op = isa::makeLoad(40, 4, 0x10000000 + pos, 0x104);
            break;
          case 2:
            op = isa::makeLoad(41, 4, 0x30000000 + pos, 0x108);
            break;
          case 3:
            op = isa::makeFpMul(42, 40, 50, 0x10c);
            break;
          case 4:
            op = isa::makeFpAdd(43, 42, 41, 0x110);
            break;
          case 5:
            op = isa::makeStore(4, 43, 0x30000000 + pos, 0x114);
            break;
          default:
            op = isa::makeBranch(4, ++iters % 1024 != 0, 0x100,
                                 0x118);
            phase = 0;
            pos = (pos + 8) % (16 << 20);
            break;
        }
        return op;
    }

    const std::string &name() const override { return label; }
    bool isFp() const override { return true; }

    void
    reset() override
    {
        phase = 0;
        pos = 0;
        iters = 0;
    }

    std::vector<wload::AddressRegion>
    regions() const override
    {
        return {{0x10000000, 16 << 20}, {0x30000000, 16 << 20}};
    }

  private:
    std::string label = "saxpy";
    int phase = 0;
    uint64_t pos = 0;
    uint64_t iters = 0;
};

/** Machine/memory/length shared by --record and --replay, so the
 *  replayed JSONL row is comparable to the recorded one. */
sim::RunConfig
traceRunConfig()
{
    return sim::RunConfig::sweep();
}

int
recordMode(const std::string &path, const std::string &preset)
{
    wload::SyntheticWorkload inner(wload::profileByName(preset));
    trace::CapturingWorkload capture(inner, path,
                                     inner.profile().seed);
    auto res = sim::Simulator::run(sim::MachineConfig::dkip2048(),
                                   capture, mem::MemConfig::mem400(),
                                   traceRunConfig());
    capture.finish();
    std::printf("%s\n", sim::runResultJson(res).c_str());
    std::fprintf(stderr, "recorded %llu micro-ops to %s\n",
                 (unsigned long long)capture.recorded(),
                 path.c_str());
    return 0;
}

int
replayMode(const std::string &path)
{
    sim::RunConfig rc = traceRunConfig();
    rc.tracePath = path;
    auto res = sim::Simulator::run(sim::MachineConfig::dkip2048(),
                                   "(trace)", mem::MemConfig::mem400(),
                                   rc);
    std::printf("%s\n", sim::runResultJson(res).c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 3 && std::strcmp(argv[1], "--record") == 0)
            return recordMode(argv[2], argc > 3 ? argv[3] : "swim");
        if (argc == 3 && std::strcmp(argv[1], "--replay") == 0)
            return replayMode(argv[2]);
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    if (argc != 1) {
        std::fprintf(stderr,
                     "usage: %s [--record FILE [NAME] | --replay "
                     "FILE]\n", argv[0]);
        return 2;
    }
    // Option A: parameterise the built-in generator.
    wload::WorkloadProfile prof;
    prof.name = "my-stream";
    prof.fp = true;
    prof.streamLoads = 2;
    prof.numStreams = 2;
    prof.streamBytes = 8 << 20;
    prof.streamStride = 64;
    prof.indepCompute = 4;
    prof.branchRandFrac = 0.01;
    auto generated = wload::makeWorkload(prof);

    // Option B: write a Workload subclass.
    SaxpyWorkload saxpy;

    for (auto machine : {sim::MachineConfig::r10_64(),
                         sim::MachineConfig::dkip2048()}) {
        auto a = sim::Simulator::run(machine, *generated,
                                     mem::MemConfig::mem400(),
                                     sim::RunConfig());
        auto b = sim::Simulator::run(machine, saxpy,
                                     mem::MemConfig::mem400(),
                                     sim::RunConfig());
        std::printf("%-10s  %-10s IPC %.2f   %-6s IPC %.2f\n",
                    machine.name.c_str(), a.workload.c_str(), a.ipc,
                    b.workload.c_str(), b.ipc);
        saxpy.reset();
    }
    std::printf("\nThe decoupled machine hides the streaming misses "
                "both ways of describing the kernel.\n");
    return 0;
}
