/**
 * @file
 * Demonstrates the paper's central concept — *execution locality* —
 * on one benchmark: the decode-to-issue distance distribution of an
 * unlimited-window machine (Figure 3's analysis) next to the D-KIP's
 * Analyze-stage classification of the same instruction stream.
 *
 *     ./execution_locality [benchmark]
 */

#include <cstdio>
#include <string>

#include "src/sim/simulator.hh"
#include "src/wload/synthetic.hh"

using namespace kilo;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "equake";
    sim::RunConfig rc;

    // 1. The phenomenon: issue-latency distribution on an unlimited
    //    out-of-order core with 400-cycle memory.
    auto limit = sim::Simulator::run(
        sim::MachineConfig::windowLimit(8192), bench,
        mem::MemConfig::mem400(), rc);
    const auto &h = limit.stats.issueLatency;
    std::printf("== %s on an unlimited window, MEM-400 ==\n",
                bench.c_str());
    std::printf("mean decode->issue distance : %.1f cycles\n",
                h.mean());
    std::printf("high locality (<300 cycles) : %5.1f%%\n",
                100.0 * h.fractionBelow(300));
    std::printf("one-miss group (300-600)    : %5.1f%%\n",
                100.0 * (h.fractionBelow(600) - h.fractionBelow(300)));
    std::printf("two-miss group (600-1000)   : %5.1f%%\n",
                100.0 *
                    (h.fractionBelow(1000) - h.fractionBelow(600)));

    // 2. The exploitation: what the D-KIP's Analyze stage does with
    //    the same stream.
    auto dkip = sim::Simulator::run(sim::MachineConfig::dkip2048(),
                                    bench, mem::MemConfig::mem400(),
                                    rc);
    const auto &s = dkip.stats;
    std::printf("\n== the D-KIP's view of the same stream ==\n");
    std::printf("IPC                          : %.2f\n", dkip.ipc);
    std::printf("executed in Cache Processor  : %5.1f%%\n",
                100.0 * (1.0 - s.mpFraction()));
    std::printf("executed in memory domain    : %5.1f%%  "
                "(LLIB->MP and Address Processor)\n",
                100.0 * s.mpFraction());
    std::printf("LLIB insertions (int/fp)     : %lu / %lu\n",
                (unsigned long)s.llibInsertedInt,
                (unsigned long)s.llibInsertedFp);
    std::printf("LLIB high-water (instrs/regs): %lu / %lu\n",
                (unsigned long)std::max(s.maxLlibInstrsInt,
                                        s.maxLlibInstrsFp),
                (unsigned long)std::max(s.maxLlibRegsInt,
                                        s.maxLlibRegsFp));
    std::printf("analyze stall cycles         : %lu (%.2f%% of %lu)\n",
                (unsigned long)s.analyzeStallCycles,
                100.0 * double(s.analyzeStallCycles) /
                    double(s.cycles),
                (unsigned long)s.cycles);
    return 0;
}
