/**
 * @file
 * Quickstart: run one benchmark on the D-KIP and a baseline, print
 * the headline numbers.
 *
 *     ./quickstart [benchmark] [machine]
 *
 * benchmark: any SPEC2000-like name (default "swim")
 * machine:   r10-64 | r10-256 | kilo | dkip | all (default "all")
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/simulator.hh"
#include "src/sim/table.hh"

using namespace kilo;

namespace
{

void
report(const sim::RunResult &r)
{
    const auto &s = r.stats;
    std::printf("%-10s %-8s  IPC %5.2f  cycles %9lu  "
                "bp-acc %5.1f%%  L2-miss %4.1f%%  MP-frac %4.1f%%\n",
                r.machine.c_str(), r.workload.c_str(), r.ipc,
                (unsigned long)s.cycles,
                100.0 * (1.0 - s.mispredictRate()),
                100.0 * r.l2MissRatio, 100.0 * s.mpFraction());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "swim";
    std::string machine = argc > 2 ? argv[2] : "all";

    std::vector<sim::MachineConfig> machines;
    if (machine == "r10-64" || machine == "all")
        machines.push_back(sim::MachineConfig::r10_64());
    if (machine == "r10-256" || machine == "all")
        machines.push_back(sim::MachineConfig::r10_256());
    if (machine == "kilo" || machine == "all")
        machines.push_back(sim::MachineConfig::kilo1024());
    if (machine == "dkip" || machine == "all")
        machines.push_back(sim::MachineConfig::dkip2048());
    if (machines.empty()) {
        std::fprintf(stderr, "unknown machine '%s'\n",
                     machine.c_str());
        return 1;
    }

    std::printf("benchmark %s, MEM-400 hierarchy (Table 2 defaults)\n",
                bench.c_str());
    for (const auto &m : machines) {
        auto res = sim::Simulator::run(m, bench,
                                       mem::MemConfig::mem400(),
                                       sim::RunConfig());
        report(res);
    }
    return 0;
}
