/**
 * @file
 * Runs the full SpecINT-like and SpecFP-like suites over the four
 * machines of the paper's Figure 9 and prints per-benchmark IPC plus
 * the arithmetic means — the library's reproduction of the headline
 * comparison.
 *
 *     ./dkip_vs_baselines [--quick]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/sweep.hh"
#include "src/sim/table.hh"

using namespace kilo;

namespace
{

void
runSuiteTable(const char *title,
              const std::vector<std::string> &suite,
              const std::vector<sim::MachineConfig> &machines,
              const sim::RunConfig &rc)
{
    sim::Table table({"bench", "R10-64", "R10-256", "KILO-1024",
                      "DKIP-2048", "MPfrac%"});
    std::vector<double> sums(machines.size(), 0.0);
    double mp_sum = 0.0;

    for (const auto &name : suite) {
        std::vector<std::string> row{name};
        double mp_frac = 0.0;
        for (size_t m = 0; m < machines.size(); ++m) {
            auto res = sim::Simulator::run(
                machines[m], name, mem::MemConfig::mem400(), rc);
            sums[m] += res.ipc;
            row.push_back(sim::Table::num(res.ipc));
            if (machines[m].kind == sim::MachineKind::Dkip)
                mp_frac = res.stats.mpFraction();
        }
        mp_sum += mp_frac;
        row.push_back(sim::Table::num(100.0 * mp_frac, 1));
        table.addRow(row);
    }

    std::vector<std::string> mean_row{"MEAN"};
    for (double s : sums)
        mean_row.push_back(
            sim::Table::num(s / double(suite.size())));
    mean_row.push_back(
        sim::Table::num(100.0 * mp_sum / double(suite.size()), 1));
    table.addRow(mean_row);

    std::printf("== %s ==\n%s\n", title, table.render().c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    sim::RunConfig rc =
        quick ? sim::RunConfig::sweep() : sim::RunConfig();

    std::vector<sim::MachineConfig> machines{
        sim::MachineConfig::r10_64(),
        sim::MachineConfig::r10_256(),
        sim::MachineConfig::kilo1024(),
        sim::MachineConfig::dkip2048(),
    };

    runSuiteTable("SpecINT-like suite", sim::intSuite(), machines, rc);
    runSuiteTable("SpecFP-like suite", sim::fpSuite(), machines, rc);
    return 0;
}
