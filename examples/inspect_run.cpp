/**
 * @file
 * Deep-dive diagnostic: run one (machine, benchmark) pair and dump
 * every counter the simulator keeps. Useful when calibrating
 * workload profiles or debugging pipeline behaviour.
 *
 *     ./inspect_run <benchmark> <machine> [mem]
 *
 * machine: r10-64 | r10-256 | r10-768 | kilo | dkip
 * mem:     l1 | l2-11 | l2-21 | mem-100 | mem-400 | mem-1000
 */

#include <cstdio>
#include <string>

#include "src/sim/simulator.hh"

using namespace kilo;

namespace
{

sim::MachineConfig
machineByName(const std::string &name)
{
    if (name == "r10-64")
        return sim::MachineConfig::r10_64();
    if (name == "r10-256")
        return sim::MachineConfig::r10_256();
    if (name == "r10-768")
        return sim::MachineConfig::r10_768();
    if (name == "kilo")
        return sim::MachineConfig::kilo1024();
    if (name == "dkip")
        return sim::MachineConfig::dkip2048();
    KILO_FATAL("unknown machine '%s'", name.c_str());
}

mem::MemConfig
memByName(const std::string &name)
{
    if (name == "l1")
        return mem::MemConfig::l1Only();
    if (name == "l2-11")
        return mem::MemConfig::l2Perfect11();
    if (name == "l2-21")
        return mem::MemConfig::l2Perfect21();
    if (name == "mem-100")
        return mem::MemConfig::mem100();
    if (name == "mem-400")
        return mem::MemConfig::mem400();
    if (name == "mem-1000")
        return mem::MemConfig::mem1000();
    KILO_FATAL("unknown memory config '%s'", name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "swim";
    std::string machine = argc > 2 ? argv[2] : "dkip";
    std::string memname = argc > 3 ? argv[3] : "mem-400";

    auto res = sim::Simulator::run(machineByName(machine), bench,
                                   memByName(memname),
                                   sim::RunConfig());
    const auto &s = res.stats;

    std::printf("run        : %s on %s, %s\n", bench.c_str(),
                machine.c_str(), memname.c_str());
    std::printf("IPC        : %.3f (%lu insts / %lu cycles)\n",
                res.ipc, (unsigned long)s.committed,
                (unsigned long)s.cycles);
    std::printf("fetched    : %lu   dispatched: %lu   issued: %lu   "
                "squashed: %lu\n",
                (unsigned long)s.fetched, (unsigned long)s.dispatched,
                (unsigned long)s.issued, (unsigned long)s.squashed);
    std::printf("branches   : %lu   mispredicts: %lu (%.2f%%)\n",
                (unsigned long)s.branches, (unsigned long)s.mispredicts,
                100.0 * s.mispredictRate());
    std::printf("loads      : %lu (L1 %lu, L2 %lu, MEM %lu)   "
                "stores: %lu   fwd: %lu\n",
                (unsigned long)s.loads, (unsigned long)s.loadL1,
                (unsigned long)s.loadL2, (unsigned long)s.loadMem,
                (unsigned long)s.stores, (unsigned long)s.storeForwards);
    std::printf("issue lat  : mean %.1f cycles, %%<100: %.1f  "
                "%%<300: %.1f\n",
                s.issueLatency.mean(),
                100.0 * s.issueLatency.fractionBelow(100),
                100.0 * s.issueLatency.fractionBelow(300));
    std::printf("locality   : CP %lu  MP %lu (MP frac %.1f%%)\n",
                (unsigned long)s.cpExecuted,
                (unsigned long)s.mpExecuted, 100.0 * s.mpFraction());
    std::printf("llib       : ins int %lu fp %lu   max instrs %lu/%lu "
                "max regs %lu/%lu\n",
                (unsigned long)s.llibInsertedInt,
                (unsigned long)s.llibInsertedFp,
                (unsigned long)s.maxLlibInstrsInt,
                (unsigned long)s.maxLlibInstrsFp,
                (unsigned long)s.maxLlibRegsInt,
                (unsigned long)s.maxLlibRegsFp);
    std::printf("stalls     : analyze %lu  llibFull %lu  llrfFull %lu "
                "llrfConf %lu  chkpt-skip %lu (taken %lu)\n",
                (unsigned long)s.analyzeStallCycles,
                (unsigned long)s.llibFullStalls,
                (unsigned long)s.llrfFullStalls,
                (unsigned long)s.llrfConflictStalls,
                (unsigned long)s.checkpointSkips,
                (unsigned long)s.checkpointsTaken);
    std::printf("memory     : accesses %lu  l2Misses %lu (%.1f%%)\n",
                (unsigned long)res.memAccesses,
                (unsigned long)res.l2Misses, 100.0 * res.l2MissRatio);
    return 0;
}
