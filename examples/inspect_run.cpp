/**
 * @file
 * Deep-dive diagnostic: run one (machine, benchmark) pair stepwise
 * through sim::Session and dump every counter the simulator keeps —
 * the full self-describing stats registry, not a hand-picked subset.
 * Useful when calibrating workload profiles or debugging pipeline
 * behaviour.
 *
 *     ./inspect_run <benchmark> <machine> [mem] [--interval N]
 *
 * machine: r10-64 | r10-256 | r10-768 | kilo | dkip
 *          (sim::MachineConfig::byName)
 * mem:     l1 | l2-11 | l2-21 | mem-100 | mem-400 | mem-1000
 *          (mem::MemConfig::byName)
 *
 * --interval N samples the run every N committed instructions and
 * prints the IPC-over-time series plus the per-interval JSONL rows
 * (sim::writeIntervalRows) — the interval performance-counter view
 * HPC methodology papers build their characterisations on.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/sim/session.hh"
#include "src/sim/sweep_engine.hh"

using namespace kilo;

int
main(int argc, char **argv)
{
    // --interval consumes its value wherever it appears; everything
    // else is positional, so any prefix of the positionals may be
    // omitted (e.g. `inspect_run swim --interval 1000`).
    uint64_t interval = 0;
    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
            interval = std::strtoull(argv[++i], nullptr, 10);
            continue;
        }
        pos.push_back(argv[i]);
    }
    std::string bench = pos.size() > 0 ? pos[0] : "swim";
    std::string machine = pos.size() > 1 ? pos[1] : "dkip";
    std::string memname = pos.size() > 2 ? pos[2] : "mem-400";

    sim::RunConfig rc;
    rc.intervalInsts = interval;

    sim::Session session(sim::MachineConfig::byName(machine), bench,
                         mem::MemConfig::byName(memname), rc);
    session.warmup();
    // Advance in bounded steps rather than one shot — bit-identical
    // to Simulator::run, but the loop is where a caller would splice
    // in sampling or a wall-clock deadline.
    while (!session.finished())
        session.step(50000);
    auto res = session.finish();
    const auto &s = res.stats;

    std::printf("run        : %s on %s, %s%s\n", bench.c_str(),
                machine.c_str(), memname.c_str(),
                res.aborted ? "  [ABORTED]" : "");
    std::printf("IPC        : %.3f (%lu insts / %lu cycles)\n",
                res.ipc, (unsigned long)s.committed,
                (unsigned long)s.cycles);
    std::printf("issue lat  : mean %.1f cycles, %%<100: %.1f  "
                "%%<300: %.1f\n",
                s.issueLatency.mean(),
                100.0 * s.issueLatency.fractionBelow(100),
                100.0 * s.issueLatency.fractionBelow(300));

    // Everything else comes straight from the registry snapshot: each
    // stat prints itself, so a counter added anywhere in the model
    // shows up here without touching this tool.
    std::printf("\n%-22s %14s  %s\n", "stat", "value", "description");
    const auto &defs = session.core().statsRegistry().defs();
    for (const auto &def : defs) {
        const auto *entry = res.snapshot.find(def.name);
        if (!entry)
            continue;
        if (entry->value.real) {
            std::printf("%-22s %14.6f  %s\n", def.name.c_str(),
                        entry->value.d, def.description.c_str());
        } else {
            std::printf("%-22s %14lu  %s\n", def.name.c_str(),
                        (unsigned long)entry->value.u,
                        def.description.c_str());
        }
    }

    if (!res.intervals.empty()) {
        std::printf("\nIPC over time (every %lu committed insts):\n",
                    (unsigned long)interval);
        for (const auto &iv : res.intervals) {
            int bar = int(iv.intervalIpc() * 12.0);
            std::printf("  [%3lu] cyc %8lu  ipc %.3f %.*s\n",
                        (unsigned long)iv.index,
                        (unsigned long)iv.cycles, iv.intervalIpc(),
                        bar > 48 ? 48 : bar,
                        "################################"
                        "################");
        }
        std::printf("\nper-interval JSONL rows:\n");
        sim::writeIntervalRows(std::cout, res);
    }
    return 0;
}
