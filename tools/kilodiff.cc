/**
 * @file
 * Determinism audit driver: record, compare and bisect KILOAUD
 * state-hash streams (src/obs/audit.hh, src/obs_audit/bisect.hh).
 *
 *     kilodiff record  <out.kaud> --machine M --workload W --mem MEM
 *                      [run options]
 *     kilodiff compare <a.kaud> <b.kaud>
 *     kilodiff verify  <a.kaud> --machine M --workload W --mem MEM
 *                      [run options]        # against a live re-run
 *     kilodiff bisect  <a.kaud> <b.kaud> --machine M --workload W
 *                      --mem MEM [run options] [--dump PREFIX]
 *                      [--margin N]
 *
 * Run options: --warmup N, --measure N, --interval N (audit cadence,
 * default measure/8), --trace PATH, and the test-only divergence
 * seed --flip-cycle C / --flip-mask M (bisect arms them on run B
 * only: run A is the reference, B the suspect).
 *
 * Exit status: 0 identical, 1 divergence found (and, for bisect,
 * localized), 2 usage or any error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/audit.hh"
#include "src/obs_audit/bisect.hh"

using namespace kilo;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s record  <out.kaud> --machine M --workload W "
        "--mem MEM [opts]\n"
        "       %s compare <a.kaud> <b.kaud>\n"
        "       %s verify  <a.kaud> --machine M --workload W "
        "--mem MEM [opts]\n"
        "       %s bisect  <a.kaud> <b.kaud> --machine M "
        "--workload W --mem MEM [opts]\n"
        "opts: --warmup N --measure N --interval N --trace PATH\n"
        "      --flip-cycle C --flip-mask M   (divergence seed; "
        "bisect applies to run B)\n"
        "      --dump PREFIX --margin N       (bisect only)\n",
        argv0, argv0, argv0, argv0);
    return 2;
}

struct Options
{
    obs_audit::RunSpec spec;
    uint64_t flipCycle = 0;
    uint64_t flipMask = 1;
    std::string dumpPrefix;
    uint64_t margin = 200;
    bool ok = true;
};

Options
parseRunOptions(int argc, char **argv, int first)
{
    Options o;
    o.spec.rc.auditIntervalInsts = 0; // defaulted after parsing
    for (int i = first; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg);
                o.ok = false;
                return "0";
            }
            return argv[++i];
        };
        if (!std::strcmp(arg, "--machine")) {
            o.spec.machine = value();
        } else if (!std::strcmp(arg, "--workload")) {
            o.spec.workload = value();
        } else if (!std::strcmp(arg, "--mem")) {
            o.spec.mem = value();
        } else if (!std::strcmp(arg, "--warmup")) {
            o.spec.rc.warmupInsts = std::strtoull(value(), nullptr, 0);
        } else if (!std::strcmp(arg, "--measure")) {
            o.spec.rc.measureInsts =
                std::strtoull(value(), nullptr, 0);
        } else if (!std::strcmp(arg, "--interval")) {
            o.spec.rc.auditIntervalInsts =
                std::strtoull(value(), nullptr, 0);
        } else if (!std::strcmp(arg, "--trace")) {
            o.spec.rc.tracePath = value();
        } else if (!std::strcmp(arg, "--flip-cycle")) {
            o.flipCycle = std::strtoull(value(), nullptr, 0);
        } else if (!std::strcmp(arg, "--flip-mask")) {
            o.flipMask = std::strtoull(value(), nullptr, 0);
        } else if (!std::strcmp(arg, "--dump")) {
            o.dumpPrefix = value();
        } else if (!std::strcmp(arg, "--margin")) {
            o.margin = std::strtoull(value(), nullptr, 0);
        } else {
            std::fprintf(stderr, "error: unknown option %s\n", arg);
            o.ok = false;
        }
    }
    if (o.spec.machine.empty() || o.spec.workload.empty() ||
        o.spec.mem.empty()) {
        std::fprintf(stderr,
                     "error: --machine, --workload and --mem are "
                     "required\n");
        o.ok = false;
    }
    if (!o.spec.rc.auditIntervalInsts) {
        uint64_t dflt = o.spec.rc.measureInsts / 8;
        o.spec.rc.auditIntervalInsts = dflt ? dflt : 1;
    }
    return o;
}

void
printDivergence(const obs::AuditStream &a, const obs::AuditStream &b,
                long k)
{
    if (size_t(k) < a.records.size() &&
        size_t(k) < b.records.size()) {
        const obs::AuditRecord &ra = a.records[size_t(k)];
        const obs::AuditRecord &rb = b.records[size_t(k)];
        std::printf("first divergent record %ld\n", k);
        std::printf("  a: insts %llu cycle %llu state %016llx "
                    "rolling %016llx\n",
                    (unsigned long long)ra.insts,
                    (unsigned long long)ra.cycle,
                    (unsigned long long)ra.state,
                    (unsigned long long)ra.rolling);
        std::printf("  b: insts %llu cycle %llu state %016llx "
                    "rolling %016llx\n",
                    (unsigned long long)rb.insts,
                    (unsigned long long)rb.cycle,
                    (unsigned long long)rb.state,
                    (unsigned long long)rb.rolling);
    } else {
        std::printf("streams agree on all %ld shared records but "
                    "differ in length (%zu vs %zu)\n",
                    k, a.records.size(), b.records.size());
    }
}

int
cmdRecord(const char *out, const Options &o)
{
    obs_audit::RunSpec spec = o.spec;
    spec.rc.auditFlipCycle = o.flipCycle;
    spec.rc.auditFlipMask = o.flipMask;
    obs::AuditStream stream = obs_audit::recordRun(spec);
    obs::writeAuditFile(out, stream);
    std::printf("wrote %s: %zu records, interval %llu insts, "
                "rolling %016llx\n",
                out, stream.records.size(),
                (unsigned long long)stream.intervalInsts,
                (unsigned long long)stream.finalRolling());
    return 0;
}

int
cmdCompare(const char *pa, const char *pb)
{
    obs::AuditStream a = obs::readAuditFile(pa);
    obs::AuditStream b = obs::readAuditFile(pb);
    long k = obs::firstDivergence(a, b);
    if (k < 0) {
        std::printf("identical: %zu records, rolling %016llx\n",
                    a.records.size(),
                    (unsigned long long)a.finalRolling());
        return 0;
    }
    printDivergence(a, b, k);
    return 1;
}

int
cmdVerify(const char *pa, const Options &o)
{
    obs::AuditStream a = obs::readAuditFile(pa);
    obs_audit::RunSpec spec = o.spec;
    spec.rc.auditIntervalInsts = a.intervalInsts;
    spec.rc.auditFlipCycle = o.flipCycle;
    spec.rc.auditFlipMask = o.flipMask;
    obs::AuditStream live = obs_audit::recordRun(spec);
    long k = obs::firstDivergence(a, live);
    if (k < 0) {
        std::printf("verified: live re-run matches all %zu records "
                    "(rolling %016llx)\n",
                    a.records.size(),
                    (unsigned long long)a.finalRolling());
        return 0;
    }
    std::printf("live re-run diverges from %s\n", pa);
    printDivergence(a, live, k);
    return 1;
}

int
cmdBisect(const char *pa, const char *pb, const Options &o)
{
    obs::AuditStream a = obs::readAuditFile(pa);
    obs::AuditStream b = obs::readAuditFile(pb);

    obs_audit::RunSpec specA = o.spec;
    specA.rc.auditIntervalInsts = a.intervalInsts;
    obs_audit::RunSpec specB = o.spec;
    specB.rc.auditIntervalInsts = b.intervalInsts;
    // The divergence seed belongs to the suspect run only; A is the
    // reference the suspect is measured against.
    specB.rc.auditFlipCycle = o.flipCycle;
    specB.rc.auditFlipMask = o.flipMask;

    obs_audit::BisectResult res = obs_audit::bisect(
        specA, specB, a, b, o.dumpPrefix, o.margin);
    if (!res.diverged) {
        std::printf("identical: %zu records, rolling %016llx\n",
                    a.records.size(),
                    (unsigned long long)a.finalRolling());
        return 0;
    }
    std::printf("first divergent record %ld\n", res.record);
    std::printf("first divergent cycle %llu\n",
                (unsigned long long)res.firstDivergentCycle);
    std::printf("  state after: a %016llx  b %016llx\n",
                (unsigned long long)res.digestA,
                (unsigned long long)res.digestB);
    if (!res.konataA.empty()) {
        std::printf("dumped %s %s\n", res.konataA.c_str(),
                    res.chromeA.c_str());
        std::printf("dumped %s %s\n", res.konataB.c_str(),
                    res.chromeB.c_str());
    }
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage(argv[0]);
    const char *cmd = argv[1];

    try {
        if (!std::strcmp(cmd, "record")) {
            Options o = parseRunOptions(argc, argv, 3);
            if (!o.ok)
                return usage(argv[0]);
            return cmdRecord(argv[2], o);
        }
        if (!std::strcmp(cmd, "compare")) {
            if (argc != 4)
                return usage(argv[0]);
            return cmdCompare(argv[2], argv[3]);
        }
        if (!std::strcmp(cmd, "verify")) {
            Options o = parseRunOptions(argc, argv, 3);
            if (!o.ok)
                return usage(argv[0]);
            return cmdVerify(argv[2], o);
        }
        if (!std::strcmp(cmd, "bisect")) {
            if (argc < 4)
                return usage(argv[0]);
            Options o = parseRunOptions(argc, argv, 4);
            if (!o.ok)
                return usage(argv[0]);
            return cmdBisect(argv[2], argv[3], o);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return usage(argv[0]);
}
