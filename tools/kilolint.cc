/**
 * @file
 * kilolint — project-invariant static analysis CLI.
 *
 *     kilolint [options] <file-or-dir>...
 *
 *     --list                 print the rule catalog and exit
 *     --json                 emit the machine-readable report on
 *                            stdout instead of file:line text
 *     --max-suppressions N   fail (exit 3) when the tree carries
 *                            more than N allow() annotations, even
 *                            if every one of them fires — the CI
 *                            cap that keeps exemptions scarce
 *     --rule NAME            run only rule NAME (repeatable);
 *                            unused-suppression stays active
 *     --layers FILE          module-layer DAG spec (src/lint/layers);
 *                            activates the layering rule
 *     --schema FILE          stats schema golden
 *                            (tools/stats_schema.golden); activates
 *                            schema-sync
 *     --baseline FILE        drop findings present in FILE (a prior
 *                            --json report): PR CI gates only on
 *                            *new* findings
 *     --diff PATH:N[-M]      keep only findings on the given line
 *                            range (repeatable); for linting just a
 *                            change
 *     --sarif FILE           also write a SARIF 2.1.0 report to FILE
 *                            for GitHub code scanning ("-": stdout)
 *     --fix                  apply mechanical autofixes in place
 *                            (std::endl -> '\n', missing #pragma
 *                            once, trailing-'_' stat names), print
 *                            the edit count, and exit — idempotent
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/IO error,
 * 3 suppression cap exceeded.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/lint/fix.hh"
#include "src/lint/linter.hh"

using namespace kilo::lint;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: kilolint [--list] [--json] [--max-suppressions N]\n"
        "                [--rule NAME]... [--layers FILE]\n"
        "                [--schema FILE] [--baseline FILE]\n"
        "                [--diff PATH:N[-M]]... [--sarif FILE]\n"
        "                [--fix] <file-or-dir>...\n");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Every lintable file under the given paths, sorted per root. */
std::vector<std::string>
expandPaths(const std::vector<std::string> &paths)
{
    namespace fs = std::filesystem;
    auto lintable = [](const fs::path &p) {
        std::string ext = p.extension().string();
        return ext == ".hh" || ext == ".h" || ext == ".hpp" ||
               ext == ".cc" || ext == ".cpp";
    };
    std::vector<std::string> out;
    for (const std::string &path : paths) {
        fs::path root(path);
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            std::vector<fs::path> files;
            for (fs::recursive_directory_iterator it(root), end;
                 it != end; ++it) {
                if (it->is_regular_file() && lintable(it->path()))
                    files.push_back(it->path());
            }
            std::sort(files.begin(), files.end());
            for (const auto &p : files)
                out.push_back(p.generic_string());
        } else if (fs::is_regular_file(root, ec)) {
            out.push_back(root.generic_string());
        } else {
            throw std::runtime_error(
                "kilolint: no such file or directory: " + path);
        }
    }
    return out;
}

int
runFix(const std::vector<std::string> &paths)
{
    std::vector<std::string> files;
    try {
        files = expandPaths(paths);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    FixStats total;
    int filesChanged = 0;
    for (const std::string &path : files) {
        std::string content;
        if (!readFile(path, content)) {
            std::fprintf(stderr, "kilolint: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        FixStats st;
        std::string fixed = applyFixes(path, content, &st);
        if (st.total() == 0)
            continue;
        std::ofstream outf(path,
                           std::ios::binary | std::ios::trunc);
        if (!outf || !(outf << fixed)) {
            std::fprintf(stderr, "kilolint: cannot write %s\n",
                         path.c_str());
            return 2;
        }
        ++filesChanged;
        total.endl += st.endl;
        total.pragmaOnce += st.pragmaOnce;
        total.statName += st.statName;
        std::printf("fixed %s (%d edit(s))\n", path.c_str(),
                    st.total());
    }
    std::fprintf(stderr,
                 "kilolint --fix: %d file(s) changed, %d edit(s) "
                 "(%d endl, %d pragma-once, %d stat-name)\n",
                 filesChanged, total.total(), total.endl,
                 total.pragmaOnce, total.statName);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool list = false;
    bool fix = false;
    long maxSuppressions = -1;
    std::set<std::string> only;
    std::vector<std::string> paths;
    std::string layersPath, schemaPath, baselinePath, sarifPath;
    DiffRanges diff;
    bool haveDiff = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](std::string &into) {
            if (++i >= argc)
                return false;
            into = argv[i];
            return true;
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--fix") {
            fix = true;
        } else if (arg == "--max-suppressions") {
            if (++i >= argc)
                return usage();
            char *end = nullptr;
            maxSuppressions = std::strtol(argv[i], &end, 10);
            if (!end || *end || maxSuppressions < 0)
                return usage();
        } else if (arg == "--rule") {
            if (++i >= argc)
                return usage();
            only.insert(argv[i]);
        } else if (arg == "--layers") {
            if (!value(layersPath))
                return usage();
        } else if (arg == "--schema") {
            if (!value(schemaPath))
                return usage();
        } else if (arg == "--baseline") {
            if (!value(baselinePath))
                return usage();
        } else if (arg == "--sarif") {
            if (!value(sarifPath))
                return usage();
        } else if (arg == "--diff") {
            std::string spec;
            if (!value(spec))
                return usage();
            if (!diff.add(spec)) {
                std::fprintf(stderr,
                             "kilolint: bad --diff spec '%s' "
                             "(want path:start[-end])\n",
                             spec.c_str());
                return 2;
            }
            haveDiff = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            paths.push_back(std::move(arg));
        }
    }

    RuleRegistry all = RuleRegistry::builtin();

    if (list) {
        for (const auto &r : all.rules()) {
            std::printf("%-24s %-8s %s\n", r->name().c_str(),
                        severityName(r->severity()),
                        r->description().c_str());
        }
        return 0;
    }
    if (paths.empty())
        return usage();
    if (fix)
        return runFix(paths);

    for (const auto &name : only) {
        if (!all.find(name)) {
            std::fprintf(stderr, "kilolint: unknown rule '%s'\n",
                         name.c_str());
            return 2;
        }
    }

    AnalysisOptions opts;
    if (!layersPath.empty()) {
        std::string text;
        if (!readFile(layersPath, text)) {
            std::fprintf(stderr,
                         "kilolint: cannot read layer spec %s\n",
                         layersPath.c_str());
            return 2;
        }
        opts.layers = LayerSpec::parse(layersPath, text);
    }
    if (!schemaPath.empty()) {
        std::string text;
        if (!readFile(schemaPath, text)) {
            std::fprintf(stderr,
                         "kilolint: cannot read schema golden %s\n",
                         schemaPath.c_str());
            return 2;
        }
        opts.schema = SchemaGolden::parse(schemaPath, text);
    }

    std::multiset<std::string> baseline;
    if (!baselinePath.empty()) {
        std::string text;
        if (!readFile(baselinePath, text) ||
            !parseBaselineKeys(text, baseline)) {
            std::fprintf(stderr,
                         "kilolint: cannot parse baseline %s\n",
                         baselinePath.c_str());
            return 2;
        }
    }

    // --rule filters findings after the run (suppressions still
    // resolve per rule); the unused-suppression pass always runs.
    Analysis analysis(all, std::move(opts));
    LintReport report;
    try {
        for (const auto &p : paths)
            analysis.addPath(p);
        report = analysis.run();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    if (!only.empty()) {
        std::vector<Finding> kept;
        for (auto &f : report.findings) {
            if (only.count(f.rule) ||
                f.rule == "unused-suppression")
                kept.push_back(std::move(f));
        }
        report.findings = std::move(kept);
    }
    if (!baselinePath.empty())
        filterBaseline(report, std::move(baseline));
    if (haveDiff)
        filterDiff(report, diff);

    if (!sarifPath.empty()) {
        std::string sarif = sarifJson(report, all);
        if (sarifPath == "-") {
            std::printf("%s\n", sarif.c_str());
        } else {
            std::ofstream outf(sarifPath,
                               std::ios::binary | std::ios::trunc);
            if (!outf || !(outf << sarif << "\n")) {
                std::fprintf(stderr,
                             "kilolint: cannot write SARIF to %s\n",
                             sarifPath.c_str());
                return 2;
            }
        }
    }

    if (json) {
        std::printf("%s\n", reportJson(report).c_str());
    } else {
        for (const auto &f : report.findings)
            std::printf("%s\n", findingLine(f).c_str());
        std::fprintf(stderr,
                     "kilolint: %d file(s), %zu finding(s), "
                     "%d/%d suppression(s) used\n",
                     report.filesScanned, report.findings.size(),
                     report.suppressionsUsed,
                     report.suppressionsTotal);
    }

    if (maxSuppressions >= 0 &&
        report.suppressionsTotal > maxSuppressions) {
        std::fprintf(stderr,
                     "kilolint: %d suppression(s) exceed the cap of "
                     "%ld — remove one or raise the documented cap\n",
                     report.suppressionsTotal, maxSuppressions);
        return 3;
    }
    return report.findings.empty() ? 0 : 1;
}
