/**
 * @file
 * kilolint — project-invariant static analysis CLI.
 *
 *     kilolint [options] <file-or-dir>...
 *
 *     --list                 print the rule catalog and exit
 *     --json                 emit the machine-readable report on
 *                            stdout instead of file:line text
 *     --max-suppressions N   fail (exit 3) when the tree carries
 *                            more than N allow() annotations, even
 *                            if every one of them fires — the CI
 *                            cap that keeps exemptions scarce
 *     --rule NAME            run only rule NAME (repeatable);
 *                            unused-suppression stays active
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/IO error,
 * 3 suppression cap exceeded.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/lint/linter.hh"

using namespace kilo::lint;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: kilolint [--list] [--json] [--max-suppressions N]\n"
        "                [--rule NAME]... <file-or-dir>...\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool list = false;
    long maxSuppressions = -1;
    std::set<std::string> only;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--max-suppressions") {
            if (++i >= argc)
                return usage();
            char *end = nullptr;
            maxSuppressions = std::strtol(argv[i], &end, 10);
            if (!end || *end || maxSuppressions < 0)
                return usage();
        } else if (arg == "--rule") {
            if (++i >= argc)
                return usage();
            only.insert(argv[i]);
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            paths.push_back(std::move(arg));
        }
    }

    RuleRegistry all = RuleRegistry::builtin();

    if (list) {
        for (const auto &r : all.rules()) {
            std::printf("%-20s %-8s %s\n", r->name().c_str(),
                        severityName(r->severity()),
                        r->description().c_str());
        }
        return 0;
    }
    if (paths.empty())
        return usage();

    for (const auto &name : only) {
        if (!all.find(name)) {
            std::fprintf(stderr, "kilolint: unknown rule '%s'\n",
                         name.c_str());
            return 2;
        }
    }

    // --rule filters findings after the run (suppressions still
    // resolve per rule); the unused-suppression pass always runs.
    Linter linter(all);
    LintReport report;
    try {
        for (const auto &p : paths)
            linter.lintPath(p, report);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    if (!only.empty()) {
        std::vector<Finding> kept;
        for (auto &f : report.findings) {
            if (only.count(f.rule) ||
                f.rule == "unused-suppression")
                kept.push_back(std::move(f));
        }
        report.findings = std::move(kept);
    }

    if (json) {
        std::printf("%s\n", reportJson(report).c_str());
    } else {
        for (const auto &f : report.findings)
            std::printf("%s\n", findingLine(f).c_str());
        std::fprintf(stderr,
                     "kilolint: %d file(s), %zu finding(s), "
                     "%d/%d suppression(s) used\n",
                     report.filesScanned, report.findings.size(),
                     report.suppressionsUsed,
                     report.suppressionsTotal);
    }

    if (maxSuppressions >= 0 &&
        report.suppressionsTotal > maxSuppressions) {
        std::fprintf(stderr,
                     "kilolint: %d suppression(s) exceed the cap of "
                     "%ld — remove one or raise the documented cap\n",
                     report.suppressionsTotal, maxSuppressions);
        return 3;
    }
    return report.findings.empty() ? 0 : 1;
}
