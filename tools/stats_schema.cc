/**
 * @file
 * Dump the registered statistics schema per machine kind.
 *
 *     ./stats_schema            full dump: name, kind, row flag,
 *                               description — one block per machine
 *     ./stats_schema --row      JSONL row key order only (all kinds
 *                               share it by construction)
 *
 * The full dump is checked in as tools/stats_schema.golden and diffed
 * in CI: renaming a stat, changing its row membership or reordering
 * registrations — anything that would silently move the JSONL schema
 * — fails the build the same way the golden trace catches timing
 * drift. Update the golden file deliberately, in the same commit as
 * the change it blesses (see src/stats/DESIGN.md).
 */

#include <cstdio>
#include <cstring>

#include "src/sim/simulator.hh"
#include "src/wload/synthetic.hh"

using namespace kilo;

namespace
{

void
dumpMachine(const sim::MachineConfig &machine, bool row_only)
{
    // Any workload/memory pair works: registration depends only on
    // the machine kind, never on run content.
    auto workload = wload::makeWorkload("gzip");
    auto core = sim::Simulator::makeCore(machine, *workload,
                                         mem::MemConfig::mem400());
    const auto &defs = core->statsRegistry().defs();

    if (row_only) {
        std::printf("# %s\n", machine.name.c_str());
        for (const auto &def : defs) {
            if (def.inRow)
                std::printf("%s\n", def.name.c_str());
        }
        return;
    }

    std::printf("== %s ==\n", machine.name.c_str());
    for (const auto &def : defs) {
        std::printf("%-22s %-9s %-4s %s\n", def.name.c_str(),
                    stats::kindName(def.kind),
                    def.inRow ? "row" : "-",
                    def.description.c_str());
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool row_only = argc > 1 && std::strcmp(argv[1], "--row") == 0;
    if (argc > 1 && !row_only) {
        std::fprintf(stderr, "usage: %s [--row]\n", argv[0]);
        return 2;
    }
    for (const auto &name : sim::MachineConfig::names())
        dumpMachine(sim::MachineConfig::byName(name), row_only);
    return 0;
}
