/**
 * @file
 * Pipeline timeline exporter (src/obs/).
 *
 *     pipeview [--machine M] [--workload W] [--mem MEM]
 *              [--warmup N] [--ops N] [--capacity N]
 *              [--konata PATH] [--chrome PATH] [--profile]
 *
 * Runs one (machine, workload, memory) simulation with an instruction
 * timeline attached to the measured region and renders the capture as
 * gem5 O3PipeView text (--konata; loadable by the Konata pipeline
 * viewer) and/or Chrome trace-event JSON (--chrome; loadable by
 * chrome://tracing and Perfetto). PATH may be "-" for stdout.
 *
 * Defaults (dkip / mcf / mem-400, no warm-up, 1000 measured ops)
 * are deliberately small and fully deterministic: CI regenerates the
 * Konata export every build and diffs it against the checked-in
 * golden (tests/data/pipeview_1k.golden), so any timing drift in the
 * pipeline shows up as a readable per-instruction diff. The capture
 * starts cold (the timeline must attach before anything is fetched,
 * or a kilo-deep window truncates every early lifecycle); pass
 * --warmup to view steady-state behaviour instead.
 *
 * --profile prints the run's wall-time self-profile (warmup /
 * measure / finish phases) to stderr.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/export.hh"
#include "src/obs/profiler.hh"
#include "src/obs/timeline.hh"
#include "src/sim/session.hh"

using namespace kilo;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--machine M] [--workload W] [--mem MEM]\n"
        "          [--warmup N] [--ops N] [--capacity N]\n"
        "          [--konata PATH] [--chrome PATH] [--profile]\n"
        "PATH may be '-' for stdout.\n",
        argv0);
    return 2;
}

/** Write @p text to @p path ('-' = stdout); dies on I/O failure. */
void
writeOut(const std::string &path, const std::string &text)
{
    std::FILE *f =
        path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "pipeview: cannot open %s\n",
                     path.c_str());
        std::exit(1);
    }
    // kilolint: allow(raw-serialization) viewer text to output file
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = n == text.size();
    if (f != stdout)
        ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::fprintf(stderr, "pipeview: short write to %s\n",
                     path.c_str());
        std::exit(1);
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string machine = "dkip";
    std::string workload = "mcf";
    std::string mem_name = "mem-400";
    uint64_t warmup = 0;
    uint64_t ops = 1000;
    uint64_t capacity = 1 << 16;
    std::string konata_path;
    std::string chrome_path;
    bool profile = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--machine") {
            machine = value();
        } else if (arg == "--workload") {
            workload = value();
        } else if (arg == "--mem") {
            mem_name = value();
        } else if (arg == "--warmup") {
            warmup = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--ops") {
            ops = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--capacity") {
            capacity = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--konata") {
            konata_path = value();
        } else if (arg == "--chrome") {
            chrome_path = value();
        } else if (arg == "--profile") {
            profile = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (konata_path.empty() && chrome_path.empty())
        konata_path = "-";

    try {
        sim::RunConfig rc;
        rc.warmupInsts = warmup;
        rc.measureInsts = ops;

        obs::Profiler prof;
        sim::Session session(sim::MachineConfig::byName(machine),
                             workload,
                             mem::MemConfig::byName(mem_name), rc);
        session.attachProfiler(profile ? &prof : nullptr);

        // Attach before warm-up: these machines keep kilo-deep
        // windows in flight, so attaching any later would truncate
        // the lifecycle head (fetch) of everything already fetched
        // ahead — which on a short run is every committed op.
        obs::Timeline timeline(capacity);
        session.core().attachTimeline(&timeline);
        session.run();
        session.core().attachTimeline(nullptr);
        sim::RunResult res = session.finish();

        if (!konata_path.empty())
            writeOut(konata_path, obs::konataText(timeline));
        if (!chrome_path.empty())
            writeOut(chrome_path, obs::chromeTraceJson(timeline));

        std::fprintf(stderr,
                     "pipeview: %s/%s/%s committed=%llu ipc=%.3f "
                     "events=%zu dropped=%llu\n",
                     res.machine.c_str(), res.workload.c_str(),
                     mem_name.c_str(),
                     (unsigned long long)res.stats.committed,
                     res.ipc, timeline.size(),
                     (unsigned long long)timeline.dropped());
        if (profile)
            std::fputs(prof.report().c_str(), stderr);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
