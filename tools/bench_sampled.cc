/**
 * @file
 * Sampled-vs-exact benchmark: the speedup/accuracy harness behind the
 * headline claim of src/sample/ (billion-op runs at interactive
 * speed). Records a KILOTRC trace of a synthetic workload, replays it
 * exactly (every instruction in detail) and sampled (cluster
 * representatives only) on each requested machine, and reports
 * wall-clock speedup and relative IPC error per machine as JSON.
 *
 *     bench_sampled [--machines r10-64,kilo,dkip] [--workload mcf]
 *                   [--ops N] [--warmup W] [--interval L]
 *                   [--clusters K] [--trace path.ktrc]
 *                   [--json out.json] [--check-max-err PCT]
 *                   [--check-min-speedup X]
 *
 * With --check-max-err the exit status enforces the accuracy bound
 * (CI pins sampled error <= 2% on a small fixed trace); with
 * --check-min-speedup it also enforces the speedup floor the 100M-op
 * acceptance run demonstrates. --trace reuses an existing trace
 * instead of recording one (the 100M-op file takes a while to write).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/sample/sampled_run.hh"
#include "src/sim/sweep_engine.hh"
#include "src/trace/capture.hh"
#include "src/wload/synthetic.hh"

using namespace kilo;

namespace
{

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    // kilolint: allow(nondeterminism) wall-clock benchmark timing
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double, std::milli>(dt).count();
}

struct Options
{
    std::vector<std::string> machines{"r10-64", "kilo", "dkip"};
    std::string workload = "mcf";
    uint64_t ops = 10'000'000;
    uint64_t warmup = 100'000;
    uint64_t interval = 0;       // 0: measure/50
    uint32_t clusters = 12;
    std::string tracePath;       // empty: record a fresh one
    std::string jsonPath;
    double checkMaxErr = -1.0;   // percent; <0: report only
    double checkMinSpeedup = -1.0;
};

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--machines a,b,c] [--workload name] [--ops N]\n"
        "          [--warmup W] [--interval L] [--clusters K]\n"
        "          [--trace path.ktrc] [--json out.json]\n"
        "          [--check-max-err PCT] [--check-min-speedup X]\n",
        argv0);
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--machines")
            opt.machines = splitCsv(value());
        else if (arg == "--workload")
            opt.workload = value();
        else if (arg == "--ops")
            opt.ops = std::strtoull(value(), nullptr, 10);
        else if (arg == "--warmup")
            opt.warmup = std::strtoull(value(), nullptr, 10);
        else if (arg == "--interval")
            opt.interval = std::strtoull(value(), nullptr, 10);
        else if (arg == "--clusters")
            opt.clusters =
                uint32_t(std::strtoul(value(), nullptr, 10));
        else if (arg == "--trace")
            opt.tracePath = value();
        else if (arg == "--json")
            opt.jsonPath = value();
        else if (arg == "--check-max-err")
            opt.checkMaxErr = std::strtod(value(), nullptr);
        else if (arg == "--check-min-speedup")
            opt.checkMinSpeedup = std::strtod(value(), nullptr);
        else
            return usage(argv[0]);
    }
    if (opt.ops <= opt.warmup) {
        std::fprintf(stderr, "--ops must exceed --warmup\n");
        return 2;
    }

    // The corpus: one trace file both runs replay, so exact and
    // sampled consume the identical instruction stream.
    std::string trace = opt.tracePath;
    if (trace.empty()) {
        trace = "/tmp/bench_sampled_" + opt.workload + "_" +
                std::to_string(opt.ops) + ".ktrc";
        std::fprintf(stderr, "recording %llu ops of %s -> %s\n",
                     (unsigned long long)opt.ops,
                     opt.workload.c_str(), trace.c_str());
        auto inner = wload::makeWorkload(opt.workload);
        trace::CapturingWorkload capture(*inner, trace, 0);
        isa::MicroOp buf[256];
        uint64_t left = opt.ops;
        while (left) {
            size_t got = capture.nextBlock(
                buf, size_t(std::min<uint64_t>(left, 256)));
            left -= got;
        }
        capture.finish();
    }

    sim::RunConfig exact_rc;
    exact_rc.warmupInsts = opt.warmup;
    exact_rc.measureInsts = opt.ops - opt.warmup;

    sim::RunConfig sampled_rc = exact_rc;
    sampled_rc.intervalInsts = opt.interval;
    sampled_rc.numClusters = opt.clusters;
    sampled_rc.samplingMode = sim::SamplingMode::Sampled;

    const std::string wl_name = "trace:" + trace;
    const mem::MemConfig mem = mem::MemConfig::mem400();

    bool fail = false;
    std::string json = "[";
    for (size_t m = 0; m < opt.machines.size(); ++m) {
        auto machine = sim::MachineConfig::byName(opt.machines[m]);

        // kilolint: allow(nondeterminism) wall-clock benchmark timing
        auto t0 = std::chrono::steady_clock::now();
        sim::RunResult exact =
            sim::Simulator::run(machine, wl_name, mem, exact_rc);
        double exact_ms = wallMs(t0);

        // kilolint: allow(nondeterminism) wall-clock benchmark timing
        t0 = std::chrono::steady_clock::now();
        sample::SampledResult sampled = sample::runSampled(
            machine, wl_name, mem, sampled_rc);
        double sampled_ms = wallMs(t0);

        double rel_err =
            exact.ipc > 0.0
                ? std::fabs(sampled.result.ipc - exact.ipc) /
                      exact.ipc
                : 0.0;
        double speedup =
            sampled_ms > 0.0 ? exact_ms / sampled_ms : 0.0;

        char row[512];
        std::snprintf(
            row, sizeof row,
            "%s{\"machine\":\"%s\",\"workload\":\"%s\","
            "\"trace_ops\":%llu,"
            "\"exact_ipc\":%.6f,\"sampled_ipc\":%.6f,"
            "\"rel_err_pct\":%.4f,"
            "\"exact_ms\":%.1f,\"sampled_ms\":%.1f,"
            "\"speedup\":%.2f,"
            "\"intervals\":%llu,\"reps\":%llu}",
            m ? "," : "", machine.name.c_str(),
            opt.workload.c_str(), (unsigned long long)opt.ops,
            exact.ipc, sampled.result.ipc, 100.0 * rel_err,
            exact_ms, sampled_ms, speedup,
            (unsigned long long)sampled.totalIntervals,
            (unsigned long long)sampled.simulatedIntervals);
        json += row;
        std::printf("%-10s exact %.4f (%8.1f ms)  sampled %.4f "
                    "(%8.1f ms)  err %.3f%%  speedup %.2fx\n",
                    machine.name.c_str(), exact.ipc, exact_ms,
                    sampled.result.ipc, sampled_ms, 100.0 * rel_err,
                    speedup);

        if (opt.checkMaxErr >= 0.0 &&
            100.0 * rel_err > opt.checkMaxErr) {
            std::fprintf(stderr,
                         "FAIL %s: error %.3f%% exceeds bound "
                         "%.3f%%\n",
                         machine.name.c_str(), 100.0 * rel_err,
                         opt.checkMaxErr);
            fail = true;
        }
        if (opt.checkMinSpeedup > 0.0 &&
            speedup < opt.checkMinSpeedup) {
            std::fprintf(stderr,
                         "FAIL %s: speedup %.2fx below floor "
                         "%.2fx\n",
                         machine.name.c_str(), speedup,
                         opt.checkMinSpeedup);
            fail = true;
        }
    }
    json += "]\n";

    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath);
        out << json;
    }
    return fail ? 1 : 0;
}
