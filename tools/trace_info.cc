/**
 * @file
 * Trace inspection utility: prints a KILOTRC file's header
 * (provenance, prewarm regions), block statistics and a per-opcode
 * histogram of the recorded stream.
 *
 *     trace_info <file.ktrc>
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/trace/trace_reader.hh"

using namespace kilo;

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <file.ktrc>\n", argv[0]);
        return 2;
    }
    const char *path = argv[1];

    try {
        trace::Reader reader(path);
        const trace::TraceMeta &meta = reader.meta();

        std::printf("trace      %s\n", path);
        std::printf("name       %s\n", meta.name.c_str());
        std::printf("suite      %s\n", meta.fp ? "FP" : "INT");
        std::printf("seed       %llu\n",
                    (unsigned long long)meta.seed);
        std::printf("ops        %llu\n",
                    (unsigned long long)reader.opCount());
        std::printf("regions    %zu\n", meta.regions.size());
        for (const auto &r : meta.regions) {
            std::printf("  base 0x%010llx  %8.2f KB\n",
                        (unsigned long long)r.base,
                        double(r.bytes) / 1024.0);
        }

        uint64_t op_counts[isa::NumOpClasses] = {};
        uint64_t total = 0, blocks = 0, payload_ops_max = 0;
        std::vector<isa::MicroOp> block;
        while (reader.readBlock(block)) {
            ++blocks;
            if (block.size() > payload_ops_max)
                payload_ops_max = block.size();
            for (const auto &op : block) {
                ++op_counts[size_t(op.cls)];
                ++total;
            }
        }
        std::printf("blocks     %llu (largest %llu ops)\n",
                    (unsigned long long)blocks,
                    (unsigned long long)payload_ops_max);
        if (total != reader.opCount()) {
            std::fprintf(stderr,
                         "error: header declares %llu ops, blocks "
                         "hold %llu\n",
                         (unsigned long long)reader.opCount(),
                         (unsigned long long)total);
            return 1;
        }

        std::printf("\n%-8s %12s %8s\n", "opcode", "count", "share");
        for (int c = 0; c < isa::NumOpClasses; ++c) {
            if (op_counts[c] == 0)
                continue;
            std::printf("%-8s %12llu %7.2f%%\n",
                        isa::opClassName(isa::OpClass(c)),
                        (unsigned long long)op_counts[c],
                        total ? 100.0 * double(op_counts[c]) /
                                double(total)
                              : 0.0);
        }
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
