/**
 * @file
 * Trace inspection utility: prints a KILOTRC file's header
 * (provenance, prewarm regions), block statistics and a per-opcode
 * histogram of the recorded stream.
 *
 *     trace_info <file.ktrc>
 *     trace_info --verify <file.ktrc>
 *
 * --verify walks every block through the reader's validating path
 * (framing, truncation, per-block checksum) WITHOUT decoding, prints
 * one line per block with its payload's FNV-1a digest, and fails
 * with the offending block's index on the first malformation — so a
 * torn or bit-flipped mid-file block is found now, not when a replay
 * finally reaches it. The digests also let two copies of a trace be
 * compared block-by-block without shipping either file.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/trace/trace_reader.hh"

using namespace kilo;

namespace
{

/** FNV-1a over a block payload (the digest --verify prints). */
uint64_t
fnv1a(const uint8_t *p, size_t n)
{
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Walk every block through the validating no-copy path and print
 * per-block digests. Returns 0 when the whole file checks out.
 */
int
verifyTrace(const char *path)
{
    trace::Reader reader(path);
    std::printf("trace      %s\n", path);
    std::printf("name       %s\n", reader.meta().name.c_str());
    std::printf("ops        %llu (header)\n",
                (unsigned long long)reader.opCount());
    std::printf("\n%-8s %10s %12s  %s\n", "block", "ops", "bytes",
                "fnv1a");

    uint64_t blocks = 0, total_ops = 0;
    for (;;) {
        const uint8_t *payload = nullptr;
        size_t payload_bytes = 0;
        uint32_t ops;
        try {
            ops = reader.nextBlockView(payload, payload_bytes);
        } catch (const trace::TraceError &e) {
            std::fprintf(stderr,
                         "error: block %llu: %s\n",
                         (unsigned long long)blocks, e.what());
            return 1;
        }
        if (ops == 0)
            break; // clean end-of-file
        std::printf("%-8llu %10u %12zu  %016llx\n",
                    (unsigned long long)blocks, ops, payload_bytes,
                    (unsigned long long)fnv1a(payload,
                                              payload_bytes));
        ++blocks;
        total_ops += ops;
    }

    if (total_ops != reader.opCount()) {
        std::fprintf(stderr,
                     "error: header declares %llu ops, blocks hold "
                     "%llu\n",
                     (unsigned long long)reader.opCount(),
                     (unsigned long long)total_ops);
        return 1;
    }
    std::printf("\n%llu block(s), %llu ops: all checksums OK\n",
                (unsigned long long)blocks,
                (unsigned long long)total_ops);
    return 0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr, "usage: %s [--verify] <file.ktrc>\n", argv0);
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool verify = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verify") == 0)
            verify = true;
        else if (argv[i][0] == '-' || path)
            return usage(argv[0]);
        else
            path = argv[i];
    }
    if (!path)
        return usage(argv[0]);

    try {
        if (verify)
            return verifyTrace(path);

        trace::Reader reader(path);
        const trace::TraceMeta &meta = reader.meta();

        std::printf("trace      %s\n", path);
        std::printf("name       %s\n", meta.name.c_str());
        std::printf("suite      %s\n", meta.fp ? "FP" : "INT");
        std::printf("seed       %llu\n",
                    (unsigned long long)meta.seed);
        std::printf("ops        %llu\n",
                    (unsigned long long)reader.opCount());
        std::printf("regions    %zu\n", meta.regions.size());
        for (const auto &r : meta.regions) {
            std::printf("  base 0x%010llx  %8.2f KB\n",
                        (unsigned long long)r.base,
                        double(r.bytes) / 1024.0);
        }

        uint64_t op_counts[isa::NumOpClasses] = {};
        uint64_t total = 0, blocks = 0, payload_ops_max = 0;
        std::vector<isa::MicroOp> block;
        while (reader.readBlock(block)) {
            ++blocks;
            if (block.size() > payload_ops_max)
                payload_ops_max = block.size();
            for (const auto &op : block) {
                ++op_counts[size_t(op.cls)];
                ++total;
            }
        }
        std::printf("blocks     %llu (largest %llu ops)\n",
                    (unsigned long long)blocks,
                    (unsigned long long)payload_ops_max);
        if (total != reader.opCount()) {
            std::fprintf(stderr,
                         "error: header declares %llu ops, blocks "
                         "hold %llu\n",
                         (unsigned long long)reader.opCount(),
                         (unsigned long long)total);
            return 1;
        }

        std::printf("\n%-8s %12s %8s\n", "opcode", "count", "share");
        for (int c = 0; c < isa::NumOpClasses; ++c) {
            if (op_counts[c] == 0)
                continue;
            std::printf("%-8s %12llu %7.2f%%\n",
                        isa::opClassName(isa::OpClass(c)),
                        (unsigned long long)op_counts[c],
                        total ? 100.0 * double(op_counts[c]) /
                                double(total)
                              : 0.0);
        }
    } catch (const trace::TraceError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
