/**
 * @file
 * Benchmark-trajectory comparator.
 *
 *     bench_compare [--max-regress PCT] [--metric cpu_time|real_time]
 *                   BASELINE.json CURRENT.json
 *
 * Diffs two google-benchmark JSON outputs — typically the latest
 * committed bench/trajectory/BENCH_prNN.json snapshot against the
 * bench_micro.json CI just produced — and prints one delta row per
 * benchmark:
 *
 *     benchmark                         baseline    current    delta
 *     BM_DkipCore100kRun              1234567 ns 1250000 ns    +1.2%
 *     BM_FetchBatched                      (new) 1000000 ns        -
 *
 * Only plain "iteration" runs are compared (aggregate rows such as
 * _mean/_stddev are skipped); benchmarks present in only one file
 * are reported but never fail the check. With --max-regress PCT the
 * exit status is 1 when any common benchmark's metric grew by more
 * than PCT percent — CI wires this as a NON-BLOCKING step, because
 * trajectory snapshots are recorded on the author's machine and
 * cross-host deltas are advisory (bench/trajectory/README.md).
 *
 * Exit codes: 0 ok / within threshold, 1 regression past threshold,
 * 2 usage or unreadable/unparseable input.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

/** One comparable benchmark row of a google-benchmark JSON file. */
struct BenchRow
{
    std::string name;
    double realTimeNs = 0;
    double cpuTimeNs = 0;
};

/** Multiplier from a google-benchmark time_unit to nanoseconds. */
double
unitToNs(const std::string &unit)
{
    if (unit == "ns")
        return 1;
    if (unit == "us")
        return 1e3;
    if (unit == "ms")
        return 1e6;
    if (unit == "s")
        return 1e9;
    return 1; // unknown units compare as-is rather than aborting
}

/**
 * Extract the string value of `"key": "value"` within @p obj, or ""
 * when absent. The google-benchmark writer emits flat one-level
 * objects per benchmark, so targeted key scans are unambiguous.
 */
std::string
stringField(const std::string &obj, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    size_t at = obj.find(needle);
    if (at == std::string::npos)
        return "";
    size_t q1 = obj.find('"', at + needle.size());
    if (q1 == std::string::npos)
        return "";
    size_t q2 = obj.find('"', q1 + 1);
    if (q2 == std::string::npos)
        return "";
    return obj.substr(q1 + 1, q2 - q1 - 1);
}

/** Extract the numeric value of `"key": 123.4`, or NaN when absent. */
double
numberField(const std::string &obj, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    size_t at = obj.find(needle);
    if (at == std::string::npos)
        return std::nan("");
    size_t v = at + needle.size();
    while (v < obj.size() && (obj[v] == ' ' || obj[v] == '\t'))
        ++v;
    return std::strtod(obj.c_str() + v, nullptr);
}

/**
 * Parse the "benchmarks" array of a google-benchmark JSON document
 * into comparable rows. Returns false when the file cannot be read
 * or holds no benchmarks array.
 */
bool
loadBenchmarks(const std::string &path, std::vector<BenchRow> &out)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "bench_compare: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string text = ss.str();

    size_t arr = text.find("\"benchmarks\"");
    if (arr == std::string::npos ||
        (arr = text.find('[', arr)) == std::string::npos) {
        std::fprintf(stderr,
                     "bench_compare: %s has no \"benchmarks\" array\n",
                     path.c_str());
        return false;
    }

    // Walk the array object by object; per-benchmark objects are
    // flat, so brace depth 1 relative to the array brackets the
    // object exactly.
    size_t pos = arr + 1;
    while (pos < text.size()) {
        size_t open = text.find_first_of("{]", pos);
        if (open == std::string::npos || text[open] == ']')
            break;
        int depth = 1;
        size_t close = open + 1;
        while (close < text.size() && depth > 0) {
            if (text[close] == '{')
                ++depth;
            else if (text[close] == '}')
                --depth;
            ++close;
        }
        std::string obj = text.substr(open, close - open);
        pos = close;

        if (stringField(obj, "run_type") != "iteration")
            continue; // _mean/_median/_stddev aggregates
        BenchRow row;
        row.name = stringField(obj, "name");
        double scale = unitToNs(stringField(obj, "time_unit"));
        row.realTimeNs = numberField(obj, "real_time") * scale;
        row.cpuTimeNs = numberField(obj, "cpu_time") * scale;
        if (!row.name.empty() && std::isfinite(row.cpuTimeNs))
            out.push_back(row);
    }
    return true;
}

const BenchRow *
findRow(const std::vector<BenchRow> &rows, const std::string &name)
{
    for (const auto &r : rows)
        if (r.name == name)
            return &r;
    return nullptr;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_compare [--max-regress PCT] "
                 "[--metric cpu_time|real_time] BASELINE CURRENT\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    double max_regress = -1; // <0: report only, never fail
    bool use_cpu = true;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--max-regress") {
            if (++i >= argc)
                return usage();
            max_regress = std::strtod(argv[i], nullptr);
        } else if (arg == "--metric") {
            if (++i >= argc)
                return usage();
            std::string m = argv[i];
            if (m == "cpu_time")
                use_cpu = true;
            else if (m == "real_time")
                use_cpu = false;
            else
                return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage();

    std::vector<BenchRow> base, cur;
    if (!loadBenchmarks(paths[0], base) ||
        !loadBenchmarks(paths[1], cur))
        return 2;

    std::printf("%-34s %14s %14s %9s\n", "benchmark", "baseline",
                "current", "delta");
    auto metric = [use_cpu](const BenchRow &r) {
        return use_cpu ? r.cpuTimeNs : r.realTimeNs;
    };

    int regressions = 0;
    double worst = 0;
    std::string worst_name;
    for (const auto &b : base) {
        const BenchRow *c = findRow(cur, b.name);
        if (!c) {
            std::printf("%-34s %11.0f ns %14s %9s\n", b.name.c_str(),
                        metric(b), "(gone)", "-");
            continue;
        }
        double delta =
            metric(b) > 0
                ? (metric(*c) - metric(b)) / metric(b) * 100.0
                : 0.0;
        std::printf("%-34s %11.0f ns %11.0f ns %+8.1f%%\n",
                    b.name.c_str(), metric(b), metric(*c), delta);
        if (max_regress >= 0 && delta > max_regress) {
            ++regressions;
            if (delta > worst) {
                worst = delta;
                worst_name = b.name;
            }
        }
    }
    for (const auto &c : cur) {
        if (!findRow(base, c.name)) {
            std::printf("%-34s %14s %11.0f ns %9s\n", c.name.c_str(),
                        "(new)", metric(c), "-");
        }
    }

    if (regressions) {
        std::fprintf(stderr,
                     "bench_compare: %d benchmark(s) regressed past "
                     "%.1f%% (worst: %s %+.1f%%)\n",
                     regressions, max_regress, worst_name.c_str(),
                     worst);
        return 1;
    }
    return 0;
}
