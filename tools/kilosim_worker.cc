/**
 * @file
 * Sweep-shard worker / orchestration driver (src/shard/).
 *
 *     kilosim_worker [--shard I/N] [--heartbeat] [--audit] MANIFEST
 *         execute one shard of the manifest's sweep matrix and print
 *         one "<job-index> <json>" row per owned job on stdout (the
 *         tagged form the orchestrator merges). --shard overrides the
 *         manifest's own shard line. With --heartbeat the shard runs
 *         its jobs one at a time (rows stay byte-identical — sweep
 *         jobs are independent) and emits one KILOHB telemetry line
 *         on stderr after each (src/obs/heartbeat.hh); the
 *         orchestrator parses these into its live progress stream.
 *         With --audit every job runs under the determinism-audit
 *         plane (src/obs/audit.hh; cadence = the manifest's `audit`
 *         directive, defaulting to measure/4) and each tagged row is
 *         followed by a "KILOAUD <job-index> <16-hex-rolling>" line
 *         carrying the job's final rolling state digest.
 *
 *     kilosim_worker --single [--audit] MANIFEST
 *         run the FULL matrix in this process and print the plain
 *         JSONL stream (writeJsonRows) — the single-process reference
 *         a sharded run must reproduce byte-for-byte. With --audit,
 *         the rows are followed by one KILOAUD line per job in job
 *         order — the same shape an audited orchestrated run merges
 *         to, so CI can byte-diff the two streams whole.
 *
 *     kilosim_worker --orchestrate N [--deadline-ms D] [--audit]
 *                    MANIFEST
 *         parent mode: spawn N copies of this binary (one per shard,
 *         --shard i/N), supervise, merge, and print the merged plain
 *         JSONL stream. CI diffs this against --single. With --audit
 *         the children run audited, the parent cross-checks rolling
 *         digests across retried attempts (a silent divergence
 *         between two attempts of the same job is a hard error), and
 *         the merged stream ends with the KILOAUD lines in job order.
 *
 *     --crash-token PATH   (test hook, any mode)
 *         if PATH exists, unlink it and abort before doing any work —
 *         a deterministic crash-exactly-once switch the retry tests
 *         use.
 *
 *     --crash-after K   (test hook, shard mode)
 *         abort after emitting K rows — yields a failed attempt WITH
 *         harvestable partial output, which is how the orchestrator's
 *         cross-attempt digest check is exercised. Combined with
 *         --crash-token the deferred crash fires only in the process
 *         that claims the token (crash exactly once, then run clean);
 *         alone it fires in every attempt.
 *
 *     --flip-token PATH [--flip-cycle C] [--flip-mask M]
 *         (test hook, shard mode) if PATH exists, unlink it and arm
 *         the audit plane's divergence seed (RunConfig::auditFlip*)
 *         in THIS process only: the claiming attempt computes
 *         different state digests than any clean re-run of the same
 *         jobs, which must surface as an audit-digest mismatch.
 *
 * Sweep threads per process default to KILO_SWEEP_THREADS (the
 * orchestrator exports 1 to its children); trace-backed jobs replay
 * through the mmap reader, so co-located workers share one file's
 * pages.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/obs/heartbeat.hh"
#include "src/shard/orchestrator.hh"
#include "src/sim/sweep_engine.hh"

using namespace kilo;

namespace
{

/**
 * Path of this executable for re-exec. The orchestrator spawns
 * children with execv(), which does not search PATH, so a bare
 * argv[0] from a PATH-based invocation must be resolved first.
 */
std::string
selfPath(const char *argv0)
{
    if (std::strchr(argv0, '/'))
        return argv0;
#if defined(__linux__)
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return argv0;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--shard I/N] [--heartbeat] [--audit] "
                 "MANIFEST\n"
                 "       %s --single [--audit] MANIFEST\n"
                 "       %s --orchestrate N [--deadline-ms D] "
                 "[--progress] [--audit] MANIFEST\n",
                 argv0, argv0, argv0);
    return 2;
}

/** One "KILOAUD <job-index> <16-hex>" digest line on stdout. */
void
printAuditLine(size_t job_index, uint64_t rolling)
{
    std::printf("KILOAUD %zu %016llx\n",
                job_index, (unsigned long long)rolling);
}

int
runShard(const shard::Manifest &manifest, bool heartbeat, bool audit,
         uint64_t crash_after)
{
    auto jobs = manifest.jobs();
    auto indices = manifest.shardJobIndices();
    sim::SweepEngine engine;
    if (!heartbeat && !audit && !crash_after) {
        auto results = engine.runSubset(jobs, indices);
        for (size_t i = 0; i < indices.size(); ++i) {
            std::printf("%zu %s\n", indices[i],
                        sim::runResultJson(results[i]).c_str());
        }
        return 0;
    }

    // Per-job mode (telemetry, audit and the crash-after hook need a
    // row boundary between jobs): one job at a time, the row — and
    // with --audit its KILOAUD digest line — flushed after each.
    // Sweep jobs are independent, so per-job runSubset calls produce
    // rows byte-identical to the bulk path above (pinned by the
    // sharded-vs-single CI golden diff, which runs the orchestrator
    // with progress enabled).
    using ClockMs = std::chrono::steady_clock;
    // kilolint: allow(nondeterminism) heartbeat wall-time anchor
    auto start = ClockMs::now();
    auto last = start;
    uint64_t insts_done = 0;
    for (size_t k = 0; k < indices.size(); ++k) {
        std::vector<size_t> one{indices[k]};
        auto results = engine.runSubset(jobs, one);
        std::printf("%zu %s\n", indices[k],
                    sim::runResultJson(results[0]).c_str());
        if (audit)
            printAuditLine(indices[k], results[0].auditRolling);
        std::fflush(stdout);
        if (crash_after && k + 1 >= crash_after) {
            std::fprintf(stderr, "kilosim_worker: --crash-after %llu "
                                 "reached, aborting\n",
                         (unsigned long long)crash_after);
            std::abort();
        }

        if (!heartbeat)
            continue;
        // kilolint: allow(nondeterminism) heartbeat job timing
        auto t = ClockMs::now();
        auto ms = [](ClockMs::duration d) {
            return uint64_t(std::chrono::duration_cast<
                                std::chrono::milliseconds>(d)
                                .count());
        };
        insts_done += results[0].stats.committed;
        obs::Heartbeat hb;
        hb.shard = int(manifest.shardIndex);
        hb.jobsDone = k + 1;
        hb.jobsTotal = indices.size();
        hb.lastJob = int(indices[k]);
        hb.instsDone = insts_done;
        hb.elapsedMs = ms(t - start);
        hb.lastJobWallMs = ms(t - last);
        last = t;
        std::fprintf(stderr, "%s\n",
                     obs::serializeHeartbeat(hb).c_str());
        std::fflush(stderr);
    }
    return 0;
}

int
runSingle(const shard::Manifest &manifest, bool audit)
{
    sim::SweepEngine engine;
    auto results = engine.run(manifest.jobs());
    for (const auto &r : results)
        std::printf("%s\n", sim::runResultJson(r).c_str());
    // Digests after the rows, in job order — the same stream shape
    // an audited orchestrated run merges to (byte-diffable in CI).
    if (audit) {
        for (size_t i = 0; i < results.size(); ++i)
            printAuditLine(i, results[i].auditRolling);
    }
    return 0;
}

int
runOrchestrate(const shard::Manifest &manifest, const char *argv0,
               uint32_t shards, uint64_t deadline_ms, bool progress,
               bool audit)
{
    shard::OrchestratorConfig cfg;
    cfg.workerPath = selfPath(argv0);
    cfg.shards = shards;
    cfg.workerDeadlineMs = deadline_ms;
    cfg.progress = progress;
    cfg.audit = audit;
    shard::Orchestrator orch(manifest, cfg);
    std::string merged = orch.run();
    // kilolint: allow(raw-serialization) merged text to stdout pipe
    std::fwrite(merged.data(), 1, merged.size(), stdout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool single = false;
    bool orchestrate = false;
    bool heartbeat = false;
    bool progress = false;
    bool audit = false;
    uint32_t shards = 0;
    uint64_t deadline_ms = 0;
    uint64_t crash_after = 0;
    uint64_t flip_cycle = 1;
    uint64_t flip_mask = 1;
    std::string shard_spec;
    std::string crash_token;
    std::string flip_token;
    std::string manifest_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--single") {
            single = true;
        } else if (arg == "--orchestrate") {
            orchestrate = true;
            shards = uint32_t(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--deadline-ms") {
            deadline_ms = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--shard") {
            shard_spec = value();
        } else if (arg == "--heartbeat") {
            heartbeat = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--audit") {
            audit = true;
        } else if (arg == "--crash-token") {
            crash_token = value();
        } else if (arg == "--crash-after") {
            crash_after = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--flip-token") {
            flip_token = value();
        } else if (arg == "--flip-cycle") {
            flip_cycle = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--flip-mask") {
            flip_mask = std::strtoull(value(), nullptr, 16);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (manifest_path.empty()) {
            manifest_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (manifest_path.empty() || (single && orchestrate) ||
        (orchestrate && shards == 0)) {
        return usage(argv[0]);
    }

    if (!crash_token.empty()) {
        if (std::remove(crash_token.c_str()) == 0) {
            // Deterministic crash-once hook: the first process to
            // claim the token dies abnormally; retries find it gone
            // and run. With --crash-after K the death is deferred
            // until K rows have been emitted, so the failed attempt
            // leaves harvestable partial output behind.
            if (!crash_after) {
                std::fprintf(stderr, "kilosim_worker: crash token %s "
                                     "claimed, aborting\n",
                             crash_token.c_str());
                std::abort();
            }
            std::fprintf(stderr,
                         "kilosim_worker: crash token %s claimed, "
                         "aborting after %llu row(s)\n",
                         crash_token.c_str(),
                         (unsigned long long)crash_after);
        } else {
            // Token already claimed: this process runs to completion.
            crash_after = 0;
        }
    }

    try {
        shard::Manifest manifest =
            shard::Manifest::load(manifest_path);
        if (!shard_spec.empty()) {
            shard::parseShardSpec(shard_spec, manifest.shardIndex,
                                  manifest.shardCount);
        }
        if (audit && !manifest.run.auditIntervalInsts) {
            // Default cadence: a few records per job. Set in the
            // manifest BEFORE the orchestrator re-serializes it, so
            // parent and children agree on the interval.
            manifest.run.auditIntervalInsts =
                std::max<uint64_t>(manifest.run.measureInsts / 4, 1);
        }
        if (!flip_token.empty() &&
            std::remove(flip_token.c_str()) == 0) {
            // Divergence-seed-once hook: the claiming process audits
            // a deliberately perturbed run (see RunConfig::auditFlip*).
            std::fprintf(stderr, "kilosim_worker: flip token %s "
                                 "claimed, seeding divergence at "
                                 "cycle %llu\n",
                         flip_token.c_str(),
                         (unsigned long long)flip_cycle);
            manifest.run.auditFlipCycle = flip_cycle;
            manifest.run.auditFlipMask = flip_mask;
        }
        if (orchestrate)
            return runOrchestrate(manifest, argv[0], shards,
                                  deadline_ms, progress, audit);
        if (single)
            return runSingle(manifest, audit);
        return runShard(manifest, heartbeat, audit, crash_after);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
